"""Sorter-based feature-extraction block for CONV layers (Algorithm 1).

The block computes, entirely in the stochastic domain and without any
accumulator, the clipped inner product

``y = clip(w . x + b, -1, 1)``

of bipolar streams.  Per clock cycle it takes one bit from each of the ``M``
input-weight product streams (produced by XNOR multipliers), sorts them
together with the ``M``-bit feedback vector of the previous cycle using a
bitonic sorter + merger, emits the bit at sorted position ``(M - 1) / 2``
(0-indexed) as the output, and feeds the following ``M`` bits back.

The ``M``-bit feedback vector stores the running accumulator of equation (3)
of the paper, offset by ``(M - 1) / 2`` so that it is always non-negative:
``ones(feedback) = accumulator + (M - 1) / 2``.  The bit at sorted position
``M - 1`` (i.e. "are there at least ``M`` ones among the ``2M`` sorted
bits?") is the output, and -- exactly as in the pooling block -- the output
bit selects which ``M``-bit window of the sorted vector is fed back, so that
the accumulator is decremented by one extra count whenever an output ``1``
is emitted.  The accumulator saturates at ``[-(M-1)/2, (M+1)/2]``, which is
what realises the ``clip(w.x + b, -1, 1)`` transfer function of equation (1).

Because the lanes are binary, the whole data path reduces to an equivalent
*counter recurrence* over the signed accumulator ``a`` (with
``h = (M - 1) / 2``), which this module uses as the fast vectorised model:

``k_t = ones(column_t) + a_{t-1}``,
``o_t = 1  iff  k_t >= h + 1``,
``a_t = clip(k_t - h - o_t, -h, h + 1)``.

The explicit sorted-vector model (and the gate-level netlist built from
:mod:`repro.aqfp.gates`) is retained for verification; the unit tests prove
all three produce identical output streams.  ``feedback_mode="unsigned"``
selects the simpler literal-prose variant of Algorithm 1 (no feedback-window
multiplexer, accumulator clipped at zero); the ablation benchmark shows why
the signed accumulator is required for large input counts.
"""

from __future__ import annotations

import numpy as np

from repro.aqfp.gates import add_sorter, add_xnor
from repro.aqfp.netlist import Netlist
from repro.blocks.batched import feature_extraction_recurrence
from repro.blocks.hardware import (
    JJ_PER_XNOR,
    XNOR_PHASES,
    BlockHardware,
    sorter_stage_costs,
)
from repro.errors import ConfigurationError, ShapeError
from repro.sc.bitstream import Bitstream
from repro.sorting.bitonic import bitonic_merger, bitonic_sorter, sort_bits

__all__ = [
    "SorterFeatureExtractionBlock",
    "SorterTransferCurve",
    "sorter_activation",
    "estimate_transfer_curve",
    "neutral_column",
]


def sorter_activation(value: np.ndarray | float) -> np.ndarray:
    """Ideal target transfer function of the block: ``clip(x, -1, 1)``.

    Equation (1) of the paper specifies this saturating function as the
    intent of the fused summation + activation.  The *hardware* block
    approximates it with a feedback register that cannot go negative, so its
    measured transfer curve (Fig. 13) is a shifted, ReLU-like saturating
    curve; :class:`SorterTransferCurve` models that measured behaviour and
    is what the network training uses.
    """
    return np.clip(np.asarray(value, dtype=np.float64), -1.0, 1.0)


def estimate_transfer_curve(
    n_inputs: int,
    z_grid: np.ndarray,
    stream_length: int = 8192,
    rng: np.random.Generator | None = None,
    feedback_mode: str = "signed",
) -> np.ndarray:
    """Empirical expected output value of the block for each target sum ``z``.

    For every grid point the ``M`` product streams are modelled as equal
    bipolar values summing to ``z`` (so the per-cycle column weight is a
    Binomial draw), and the block's counter recurrence is run for
    ``stream_length`` cycles.  The decoded output is the Fig. 13 transfer
    curve.

    Args:
        n_inputs: number of product streams ``M`` (before neutral padding).
        z_grid: target inner-product values (may exceed [-1, 1]).
        stream_length: cycles simulated per grid point.
        rng: random generator (a fixed default seed is used when omitted so
            the cached curves are reproducible).
        feedback_mode: accumulator variant, as in
            :class:`SorterFeatureExtractionBlock`.

    Returns:
        Array of decoded output values, one per entry of ``z_grid``.
    """
    if n_inputs < 1:
        raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
    if stream_length <= 0:
        raise ConfigurationError(f"stream_length must be positive, got {stream_length}")
    rng = rng or np.random.default_rng(20190622)
    z_grid = np.asarray(z_grid, dtype=np.float64)
    m = n_inputs if n_inputs % 2 == 1 else n_inputs + 1
    half = (m - 1) // 2
    # Probability of a one in each product stream when the z is split evenly.
    p = np.clip((z_grid / m + 1.0) / 2.0, 0.0, 1.0)
    column_ones = rng.binomial(m, p[:, None], size=(z_grid.size, stream_length))
    low, high = (-half, half + 1) if feedback_mode == "signed" else (0, m)
    ones_total = feature_extraction_recurrence(
        column_ones, half, low, high, return_bits=False
    )
    return 2.0 * ones_total / stream_length - 1.0


class SorterTransferCurve:
    """Cached, interpolated transfer curve of the feature-extraction block.

    The curve is estimated once per input size with
    :func:`estimate_transfer_curve` and then evaluated by linear
    interpolation, which is fast enough to serve as the activation function
    during float training of the SC-aware network.

    Args:
        n_inputs: number of product streams ``M``.
        z_min, z_max: range of inner-product values covered by the grid.
        n_points: grid resolution.
        stream_length: cycles used to estimate each grid point.
    """

    #: Memo keyed by every estimation parameter:
    #: ``(n_inputs, z_min, z_max, n_points, stream_length, feedback_mode)``.
    _cache: dict[
        tuple[int, float, float, int, int, str], "SorterTransferCurve"
    ] = {}

    def __init__(
        self,
        n_inputs: int,
        z_min: float = -4.0,
        z_max: float = 4.0,
        n_points: int = 129,
        stream_length: int = 8192,
        feedback_mode: str = "signed",
    ) -> None:
        if z_max <= z_min:
            raise ConfigurationError("z_max must exceed z_min")
        if n_points < 3:
            raise ConfigurationError("n_points must be >= 3")
        self._n_inputs = int(n_inputs)
        self._feedback_mode = feedback_mode
        self._grid = np.linspace(z_min, z_max, n_points)
        raw = estimate_transfer_curve(
            n_inputs, self._grid, stream_length, feedback_mode=feedback_mode
        )
        # The raw estimate carries ~1/sqrt(stream_length) sampling noise per
        # grid point; smooth it and enforce monotonicity so the curve (and
        # its derivative, used by backpropagation) is well behaved.
        self._values = self._smooth(raw)
        self._slopes = np.gradient(self._values, self._grid)

    @staticmethod
    def _smooth(values: np.ndarray, window: int = 5) -> np.ndarray:
        kernel = np.ones(window) / window
        padded = np.concatenate(
            [np.full(window // 2, values[0]), values, np.full(window // 2, values[-1])]
        )
        smoothed = np.convolve(padded, kernel, mode="valid")
        return np.maximum.accumulate(smoothed)

    @classmethod
    def cached(cls, n_inputs: int, **kwargs: object) -> "SorterTransferCurve":
        """Return a memoised curve for this input size and grid settings.

        The memo key covers all six estimation parameters, including
        ``feedback_mode`` -- curves for the signed and unsigned accumulator
        variants are cached independently.
        """
        key = (
            int(n_inputs),
            float(kwargs.get("z_min", -4.0)),
            float(kwargs.get("z_max", 4.0)),
            int(kwargs.get("n_points", 129)),
            int(kwargs.get("stream_length", 8192)),
            str(kwargs.get("feedback_mode", "signed")),
        )
        if key not in cls._cache:
            cls._cache[key] = cls(
                n_inputs,
                z_min=key[1],
                z_max=key[2],
                n_points=key[3],
                stream_length=key[4],
                feedback_mode=key[5],
            )
        return cls._cache[key]

    @property
    def n_inputs(self) -> int:
        """Input size the curve was estimated for."""
        return self._n_inputs

    @property
    def grid(self) -> np.ndarray:
        """Inner-product grid values."""
        return self._grid.copy()

    @property
    def values(self) -> np.ndarray:
        """Decoded block outputs at the grid points."""
        return self._values.copy()

    def __call__(self, z: np.ndarray | float) -> np.ndarray:
        """Interpolate the expected block output for inner-product value(s)."""
        return np.interp(np.asarray(z, dtype=np.float64), self._grid, self._values)

    def derivative(self, z: np.ndarray | float) -> np.ndarray:
        """Smoothed curve slope used by backpropagation during training."""
        z = np.asarray(z, dtype=np.float64)
        return np.interp(z, self._grid, self._slopes)


def neutral_column(length: int) -> np.ndarray:
    """Alternating 0/1 stream of bipolar value 0 used to pad even input sizes."""
    return (np.arange(length) % 2).astype(np.uint8)


class SorterFeatureExtractionBlock:
    """Feature-extraction block: fused SC inner product + clipped activation.

    Args:
        n_inputs: number of input-weight product streams ``M`` (before the
            neutral padding applied when ``M`` is even).
        feedback_mode: ``"signed"`` (default) keeps the offset signed
            accumulator of equations (1)-(3), realising ``clip(z, -1, 1)``;
            ``"unsigned"`` is the literal-prose variant whose accumulator
            saturates at zero (kept for the ablation study).
    """

    _FEEDBACK_MODES = ("signed", "unsigned")

    def __init__(self, n_inputs: int, feedback_mode: str = "signed") -> None:
        if n_inputs < 1:
            raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
        if feedback_mode not in self._FEEDBACK_MODES:
            raise ConfigurationError(
                f"feedback_mode must be one of {self._FEEDBACK_MODES}, "
                f"got {feedback_mode!r}"
            )
        self._n_inputs = int(n_inputs)
        self._feedback_mode = feedback_mode

    @property
    def n_inputs(self) -> int:
        """Number of product streams the block accepts."""
        return self._n_inputs

    @property
    def feedback_mode(self) -> str:
        """Accumulator variant: ``"signed"`` (paper spec) or ``"unsigned"``."""
        return self._feedback_mode

    @property
    def effective_inputs(self) -> int:
        """Input count after neutral padding (always odd)."""
        return self._n_inputs if self._n_inputs % 2 == 1 else self._n_inputs + 1

    @property
    def threshold(self) -> int:
        """The ``(M - 1) / 2`` subtraction applied every cycle."""
        return (self.effective_inputs - 1) // 2

    # -- stream-level models -------------------------------------------------

    def _pad_products(self, products: np.ndarray) -> np.ndarray:
        """Append the neutral column when the input count is even."""
        products = np.asarray(products, dtype=np.uint8)
        if products.ndim < 2:
            raise ShapeError("products must have shape (..., M, N)")
        if products.shape[-2] != self._n_inputs:
            raise ShapeError(
                f"expected {self._n_inputs} product streams, got {products.shape[-2]}"
            )
        if self._n_inputs % 2 == 1:
            return products
        length = products.shape[-1]
        pad = np.broadcast_to(
            neutral_column(length), products.shape[:-2] + (1, length)
        )
        return np.concatenate([products, pad], axis=-2)

    def forward_products(self, products: np.ndarray) -> np.ndarray:
        """Run the block on pre-multiplied product streams.

        Args:
            products: 0/1 array of shape ``(..., M, N)`` -- the XNOR outputs
                (input-weight product streams), one row per input.

        Returns:
            0/1 array of shape ``(..., N)``: the activated inner-product
            stream ``SO``.
        """
        padded = self._pad_products(products)
        m = padded.shape[-2]
        half = (m - 1) // 2
        column_ones = padded.sum(axis=-2, dtype=np.int64)  # (..., N)
        if self._feedback_mode == "signed":
            low, high = -half, half + 1
        else:
            low, high = 0, m
        return feature_extraction_recurrence(column_ones, half, low, high)

    def forward_products_sorted_vector(self, products: np.ndarray) -> np.ndarray:
        """Bit-exact sorted-vector model mirroring the hardware data path.

        Maintains the explicit ``M``-bit feedback vector and sorts it with
        each incoming column exactly as the sorter + merger would; used to
        validate the counter recurrence of :meth:`forward_products`.
        Only supports a single block instance (``products`` of shape
        ``(M, N)``).
        """
        padded = self._pad_products(products)
        if padded.ndim != 2:
            raise ShapeError("the sorted-vector model expects shape (M, N)")
        m, length = padded.shape
        half = (m - 1) // 2
        feedback = np.zeros(m, dtype=np.uint8)
        if self._feedback_mode == "signed":
            # ones(feedback) = accumulator + h, so a zero accumulator means
            # the register starts with h ones.
            feedback[:half] = 1
        output_position = m - 1 if self._feedback_mode == "signed" else half
        output = np.empty(length, dtype=np.uint8)
        for t in range(length):
            column_sorted = sort_bits(padded[:, t], descending=True)
            merged = sort_bits(
                np.concatenate([column_sorted, feedback]), descending=True
            )
            bit = merged[output_position]
            output[t] = bit
            # The output bit selects which M-bit window is fed back: emitting
            # a one consumes one extra count from the accumulator.
            start = half + int(bit)
            feedback = merged[start : start + m]
        return output

    def forward(
        self,
        inputs: Bitstream | np.ndarray,
        weights: Bitstream | np.ndarray,
        bias: Bitstream | np.ndarray | None = None,
    ) -> Bitstream:
        """Multiply inputs by weights (XNOR) and run the block.

        Args:
            inputs: bipolar streams of shape ``(..., M, N)``.
            weights: bipolar streams of the same shape.
            bias: optional extra product stream of shape ``(..., 1, N)``
                appended to the products (the bias term of the neuron).

        Returns:
            The activated inner-product stream.
        """
        input_bits = inputs.bits if isinstance(inputs, Bitstream) else np.asarray(inputs)
        weight_bits = weights.bits if isinstance(weights, Bitstream) else np.asarray(weights)
        if input_bits.shape != weight_bits.shape:
            raise ShapeError(
                f"input shape {input_bits.shape} != weight shape {weight_bits.shape}"
            )
        products = np.logical_not(np.logical_xor(input_bits, weight_bits)).astype(np.uint8)
        if bias is not None:
            bias_bits = bias.bits if isinstance(bias, Bitstream) else np.asarray(bias)
            products = np.concatenate([products, bias_bits.astype(np.uint8)], axis=-2)
            block = SorterFeatureExtractionBlock(products.shape[-2])
            return Bitstream._trusted(block.forward_products(products), "bipolar")
        return Bitstream._trusted(self.forward_products(products), "bipolar")

    # -- reference / hardware -------------------------------------------------

    def reference_output(self, product_values: np.ndarray) -> np.ndarray:
        """Exact real-valued output: ``clip(sum of product values, -1, 1)``."""
        product_values = np.asarray(product_values, dtype=np.float64)
        return sorter_activation(product_values.sum(axis=-1))

    def hardware(self, include_multipliers: bool = True) -> BlockHardware:
        """Stage-level AQFP hardware estimate of this block.

        The data path is an ``M``-input bitonic sorter for the fresh column
        followed by a ``2M``-input bitonic merger that folds in the (already
        sorted) feedback vector, preceded by ``M`` XNOR multipliers when
        ``include_multipliers`` is true.
        """
        m = self.effective_inputs
        sorter = sorter_stage_costs(bitonic_sorter(m), "column-sorter")
        merger = sorter_stage_costs(bitonic_merger(2 * m), "feedback-merger")
        # The output bit selects which M-bit window of the sorted vector is
        # fed back: one AND/OR pair per feedback lane plus the splitter tree
        # that fans the select bit out.
        feedback_mux = BlockHardware(
            name="feedback-mux", jj_count=12 * m + 4 * (m // 2 + 1), depth_phases=2
        )
        total = sorter.combine(merger).combine(
            feedback_mux, name=f"feature-extraction-{self._n_inputs}"
        )
        if include_multipliers:
            multipliers = BlockHardware(
                name="xnor-array",
                jj_count=JJ_PER_XNOR * self._n_inputs,
                depth_phases=XNOR_PHASES,
            )
            total = multipliers.combine(total, name=f"feature-extraction-{self._n_inputs}")
        return total

    def build_netlist(self, name: str = "feature_extraction") -> Netlist:
        """Explicit gate-level netlist of one cycle of the data path.

        The netlist covers the combinational part (XNOR array, column
        sorter, feedback merger); the feedback registers are the AQFP
        pipeline itself.  Outputs are: the output bit (sorted position
        ``M - 1`` for the signed accumulator, ``(M - 1) / 2`` for the
        unsigned variant) followed by the two candidate feedback windows
        (select-low window starting at ``(M - 1) / 2``, then select-high
        window starting at ``(M + 1) / 2``).  Intended for functional
        verification at small sizes, not for costing large blocks.
        """
        m = self.effective_inputs
        netlist = Netlist(name)
        x_nodes = [netlist.add_input(f"x{i}") for i in range(self._n_inputs)]
        w_nodes = [netlist.add_input(f"w{i}") for i in range(self._n_inputs)]
        feedback_nodes = [netlist.add_input(f"fb{i}") for i in range(m)]
        products = [
            add_xnor(netlist, x, w, f"{name}.xnor{i}")
            for i, (x, w) in enumerate(zip(x_nodes, w_nodes))
        ]
        if self._n_inputs % 2 == 0:
            products.append(netlist.add_input("neutral"))
        # The fresh column is sorted ascending so that, concatenated with the
        # descending feedback vector, the merger sees a bitonic sequence.
        sorted_column = add_sorter(
            netlist, products, bitonic_sorter(m, descending=False), f"{name}.sort"
        )
        merged = add_sorter(
            netlist,
            sorted_column + feedback_nodes,
            bitonic_merger(2 * m),
            f"{name}.merge",
        )
        half = (m - 1) // 2
        output_position = m - 1 if self._feedback_mode == "signed" else half
        outputs = (
            [merged[output_position]]
            + merged[half : half + m]
            + merged[half + 1 : half + 1 + m]
        )
        netlist.set_outputs(outputs)
        return netlist
