"""The paper's proposed SC/AQFP building blocks.

Four blocks make up the proposed architecture (paper Fig. 6):

* :class:`~repro.blocks.sng_block.SngBlock` -- stochastic number generation
  from the shared true-RNG matrix plus comparators.
* :class:`~repro.blocks.feature_extraction.SorterFeatureExtractionBlock` --
  the bitonic-sorter + feedback block that fuses inner product and a clipped
  activation for CONV layers (Algorithm 1).
* :class:`~repro.blocks.pooling.SorterAveragePoolingBlock` -- the
  bitonic-sorter + feedback average-pooling block (Algorithm 2).
* :class:`~repro.blocks.categorization.MajorityChainCategorizationBlock` --
  the majority-gate chain that ranks FC-layer outputs.

:mod:`~repro.blocks.apc_baseline` implements the prior-work APC + Btanh
block for comparison, and :mod:`~repro.blocks.hardware` contains the shared
stage-level hardware estimator used to cost all of them in AQFP.
"""

from repro.blocks.apc_baseline import ApcFeatureExtractionBlock
from repro.blocks.categorization import (
    MajorityChainCategorizationBlock,
    chain_output_probability,
)
from repro.blocks.feature_extraction import (
    SorterFeatureExtractionBlock,
    SorterTransferCurve,
    estimate_transfer_curve,
    sorter_activation,
)
from repro.blocks.hardware import BlockHardware
from repro.blocks.pooling import SorterAveragePoolingBlock
from repro.blocks.sng_block import SngBlock

__all__ = [
    "SngBlock",
    "SorterFeatureExtractionBlock",
    "SorterTransferCurve",
    "estimate_transfer_curve",
    "sorter_activation",
    "SorterAveragePoolingBlock",
    "MajorityChainCategorizationBlock",
    "chain_output_probability",
    "ApcFeatureExtractionBlock",
    "BlockHardware",
]
