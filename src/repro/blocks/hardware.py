"""Stage-level AQFP hardware estimation shared by the proposed blocks.

Large blocks (e.g. an 800-input categorization layer) would need explicit
netlists with hundreds of thousands of cells; building those is useful for
functional verification at small sizes but wasteful for cost estimation.
The estimator here works at the granularity the paper itself reasons at:

* a binary compare-and-swap is one AND + one OR plus the two splitters that
  fan each operand out to both gates -- 20 JJ and two clock phases
  (splitter phase + gate phase);
* lanes that do not participate in a sorting stage still need buffers to
  stay phase-aligned -- 2 JJ per lane per phase;
* an XNOR multiplier macro is 30 JJ and four phases (splitter, inverters,
  ANDs, OR) including its internal padding;
* a 3-input majority gate is 6 JJ and one phase, with a splitter (4 JJ)
  wherever a signal feeds more than one sink.

These per-structure numbers are derived from the explicit netlists of
:mod:`repro.aqfp.gates` after balancing (the unit tests assert the
correspondence), so the analytic totals track what full construction would
give while remaining O(number of comparators).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aqfp.energy import HardwareCost, cost_from_counts
from repro.aqfp.technology import AqfpTechnology
from repro.errors import ConfigurationError
from repro.sorting.network import ComparatorNetwork

__all__ = ["BlockHardware", "sorter_stage_costs"]

#: JJ cost of a compare-and-swap with its operand splitters.
JJ_PER_COMPARATOR = 20
#: JJ cost of an idle-lane buffer for one phase.
JJ_PER_BUFFER = 2
#: JJ cost of an XNOR multiplier macro (with internal splitters/padding).
JJ_PER_XNOR = 30
#: Pipeline phases occupied by an XNOR macro.
XNOR_PHASES = 4
#: JJ cost of a 3-input majority gate.
JJ_PER_MAJ3 = 6
#: JJ cost of a splitter cell.
JJ_PER_SPLITTER = 4
#: JJ cost of a 1-bit AQFP true RNG (one buffer).
JJ_PER_TRNG = 2
#: Phases per sorting stage (splitter phase + compare phase).
PHASES_PER_STAGE = 2


@dataclass(frozen=True)
class BlockHardware:
    """Raw hardware counts of one block instance.

    Attributes:
        name: block label used in reports.
        jj_count: total Josephson junctions.
        depth_phases: pipeline depth in clock phases.
    """

    name: str
    jj_count: int
    depth_phases: int

    def cost(
        self, technology: AqfpTechnology, stream_length: int = 1024
    ) -> HardwareCost:
        """Energy/latency/throughput for one stream through this block."""
        return cost_from_counts(
            jj_count=self.jj_count,
            depth_phases=self.depth_phases,
            technology=technology,
            stream_length=stream_length,
        )

    def combine(self, other: "BlockHardware", name: str | None = None) -> "BlockHardware":
        """Series composition: JJ counts add, depths add."""
        return BlockHardware(
            name=name or f"{self.name}+{other.name}",
            jj_count=self.jj_count + other.jj_count,
            depth_phases=self.depth_phases + other.depth_phases,
        )

    def replicate(self, copies: int, name: str | None = None) -> "BlockHardware":
        """Parallel composition: JJ counts multiply, depth unchanged."""
        if copies <= 0:
            raise ConfigurationError(f"copies must be positive, got {copies}")
        return BlockHardware(
            name=name or f"{copies}x{self.name}",
            jj_count=self.jj_count * copies,
            depth_phases=self.depth_phases,
        )


def sorter_stage_costs(network: ComparatorNetwork, name: str = "sorter") -> BlockHardware:
    """Estimate the balanced AQFP cost of a comparator network.

    Every stage costs one splitter phase plus one gate phase for the active
    lanes and two buffer phases for idle lanes (to keep alignment).
    """
    stages = network.stages()
    width = network.width
    jj_total = 0
    for stage in stages:
        active_lanes = 2 * len(stage)
        idle_lanes = max(width - active_lanes, 0)
        jj_total += len(stage) * JJ_PER_COMPARATOR
        jj_total += idle_lanes * JJ_PER_BUFFER * PHASES_PER_STAGE
    depth = PHASES_PER_STAGE * len(stages)
    return BlockHardware(name=name, jj_count=jj_total, depth_phases=depth)
