"""Sorter-based average-pooling (sub-sampling) block (Algorithm 2).

The block emits exactly one output ``1`` for every ``M`` ones observed
across its ``M`` input streams, so the decoded output is the mean of the
decoded inputs -- an average pooling operation with far lower variance than
the MUX-based pooling of the prior CMOS work (which samples a single input
per cycle).

As with the feature-extraction block, the hardware is an ``M``-input bitonic
sorter plus a ``2M``-input merger with an ``M``-bit feedback vector, and the
binary data path reduces to a counter recurrence used as the fast model:

``k_t = ones(column_t) + s_{t-1}``,
``o_t = 1  iff  k_t >= M``,
``s_t = min(k_t - M * o_t, M)``.
"""

from __future__ import annotations

import numpy as np

from repro.aqfp.gates import add_sorter
from repro.aqfp.netlist import Netlist
from repro.blocks.batched import pooling_recurrence
from repro.blocks.hardware import BlockHardware, sorter_stage_costs
from repro.errors import ConfigurationError, ShapeError
from repro.sc.bitstream import Bitstream
from repro.sorting.bitonic import bitonic_merger, bitonic_sorter, sort_bits

__all__ = ["SorterAveragePoolingBlock"]


class SorterAveragePoolingBlock:
    """Average pooling over ``M`` bipolar stochastic streams.

    Args:
        n_inputs: number of pooled streams ``M`` (e.g. 4 for 2x2 pooling).
    """

    def __init__(self, n_inputs: int) -> None:
        if n_inputs < 1:
            raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
        self._n_inputs = int(n_inputs)

    @property
    def n_inputs(self) -> int:
        """Number of pooled input streams."""
        return self._n_inputs

    # -- stream-level models -------------------------------------------------

    def _check(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim < 2:
            raise ShapeError("pooling input must have shape (..., M, N)")
        if bits.shape[-2] != self._n_inputs:
            raise ShapeError(
                f"expected {self._n_inputs} input streams, got {bits.shape[-2]}"
            )
        return bits

    def forward_bits(self, bits: np.ndarray) -> np.ndarray:
        """Pool raw input streams.

        Uses the closed form of the counter recurrence (see
        :func:`repro.blocks.batched.pooling_recurrence`), so any number of
        block instances is pooled in a handful of vectorised passes with no
        per-cycle loop; output is bit-identical to the hardware data path.

        Args:
            bits: 0/1 array of shape ``(..., M, N)``.

        Returns:
            0/1 array of shape ``(..., N)``: the pooled stream, whose decoded
            bipolar value approximates the mean of the decoded inputs.
        """
        bits = self._check(bits)
        # Column counts fit a byte for any realistic M; the narrow dtype
        # keeps the whole closed-form pipeline memory-bandwidth friendly.
        count_dtype = np.uint8 if self._n_inputs <= 255 else np.int64
        column_ones = bits.sum(axis=-2, dtype=count_dtype)
        return pooling_recurrence(column_ones, self._n_inputs)

    def forward_bits_reference(self, bits: np.ndarray) -> np.ndarray:
        """Literal per-cycle counter recurrence (legacy reference model).

        Kept for equivalence testing and as the "legacy uint8 path" baseline
        of ``benchmarks/bench_perf.py``; :meth:`forward_bits` is the fast
        closed-form implementation.
        """
        bits = self._check(bits)
        m = self._n_inputs
        length = bits.shape[-1]
        column_ones = bits.sum(axis=-2, dtype=np.int64)
        surplus = np.zeros(column_ones.shape[:-1], dtype=np.int64)
        output = np.empty(column_ones.shape, dtype=np.uint8)
        for t in range(length):
            k = column_ones[..., t] + surplus
            bit = (k >= m).astype(np.uint8)
            output[..., t] = bit
            surplus = np.minimum(k - m * bit, m)
        return output

    def forward_bits_sorted_vector(self, bits: np.ndarray) -> np.ndarray:
        """Bit-exact sorted-vector model of the hardware data path.

        Only supports a single block instance (shape ``(M, N)``); used to
        validate the counter recurrence of :meth:`forward_bits`.
        """
        bits = self._check(bits)
        if bits.ndim != 2:
            raise ShapeError("the sorted-vector model expects shape (M, N)")
        m, length = bits.shape
        feedback = np.zeros(m, dtype=np.uint8)
        output = np.empty(length, dtype=np.uint8)
        for t in range(length):
            column_sorted = sort_bits(bits[:, t], descending=True)
            merged = sort_bits(
                np.concatenate([column_sorted, feedback]), descending=True
            )
            # 1-indexed position M == 0-indexed M-1: one iff at least M ones.
            bit = merged[m - 1]
            output[t] = bit
            if bit:
                feedback = merged[m : 2 * m]
            else:
                feedback = merged[:m]
        return output

    def forward(self, streams: Bitstream | np.ndarray) -> Bitstream:
        """Pool a :class:`Bitstream` (or raw bits) of shape ``(..., M, N)``."""
        bits = streams.bits if isinstance(streams, Bitstream) else np.asarray(streams)
        return Bitstream._trusted(self.forward_bits(bits), "bipolar")

    def reference_output(self, input_values: np.ndarray) -> np.ndarray:
        """Exact real-valued output: the mean of the input values."""
        return np.asarray(input_values, dtype=np.float64).mean(axis=-1)

    # -- hardware --------------------------------------------------------------

    def hardware(self) -> BlockHardware:
        """Stage-level AQFP hardware estimate of this block."""
        m = self._n_inputs
        sorter = sorter_stage_costs(bitonic_sorter(m), "column-sorter")
        merger = sorter_stage_costs(bitonic_merger(2 * m), "feedback-merger")
        # The feedback-select multiplexer is one extra phase of M AND/OR pairs.
        mux = BlockHardware("feedback-mux", jj_count=12 * m + 4, depth_phases=2)
        return sorter.combine(merger).combine(mux, name=f"avg-pool-{m}")

    def build_netlist(self, name: str = "avg_pool") -> Netlist:
        """Explicit gate-level netlist of one cycle of the data path.

        Outputs: the decision bit (sorted position ``M - 1``) followed by the
        two candidate feedback vectors (upper half then lower half of the
        merged sort); the surrounding pipeline selects between them using the
        decision bit.
        """
        m = self._n_inputs
        netlist = Netlist(name)
        inputs = [netlist.add_input(f"in{i}") for i in range(m)]
        feedback = [netlist.add_input(f"fb{i}") for i in range(m)]
        sorted_column = add_sorter(
            netlist, inputs, bitonic_sorter(m, descending=False), f"{name}.sort"
        )
        merged = add_sorter(
            netlist, sorted_column + feedback, bitonic_merger(2 * m), f"{name}.merge"
        )
        outputs = [merged[m - 1]] + merged[:m] + merged[m : 2 * m]
        netlist.set_outputs(outputs)
        return netlist
