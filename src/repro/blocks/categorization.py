"""Majority-chain categorization block for FC layers.

FC (categorization) layers have many more inputs than CONV layers, but their
job is only to *rank* the class scores, not to compute them precisely.  The
paper therefore replaces the expensive sorter block with a chain of 3-input
majority gates: per clock cycle the output bit is (approximately) the
majority of the ``K`` product bits, so the decoded output is a monotone
(sigmoid-like) function of the inner product that preserves the ranking of
the classes.

The chain factorisation ``Maj(x0..x4) = Maj(Maj(x0, x1, x2), x3, x4)`` is an
approximation of the true wide majority -- exactly the approximation the
hardware makes -- and the functional model reproduces it bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro.aqfp.gates import build_majority_chain_netlist
from repro.aqfp.netlist import Netlist
from repro.blocks.hardware import (
    JJ_PER_MAJ3,
    JJ_PER_SPLITTER,
    JJ_PER_XNOR,
    XNOR_PHASES,
    BlockHardware,
)
from repro.errors import ConfigurationError, ShapeError
from repro.sc.bitstream import Bitstream
from repro.sc.packed import (
    majority_chain_words,
    pack_bits,
    prefix_ones_counts,
    unpack_bits,
)

__all__ = [
    "MajorityChainCategorizationBlock",
    "chain_output_probability",
    "prefix_chain_scores",
]


def prefix_chain_scores(
    words: np.ndarray, checkpoints, length: int
) -> np.ndarray:
    """Early-exit class scores of packed chain-output streams at checkpoints.

    Every SC block in the network is *causal* along the stream axis: the
    SNG comparisons are per-cycle, the feature-extraction and pooling
    counters only accumulate past cycles, and the majority chain is
    combinational.  Output bit ``t`` of the categorization chain therefore
    depends only on input cycles ``<= t``, so the ``P``-bit prefix of the
    output stream is *exactly* what the hardware would have produced had
    it stopped streaming after ``P`` cycles.  Decoding those prefixes is a
    prefix popcount over the packed words
    (:func:`repro.sc.packed.prefix_ones_counts`) -- nearly free in the
    word layout -- which is what the progressive-precision early exit of
    :mod:`repro.serve` evaluates at its stream-length checkpoints.

    Args:
        words: packed chain-output streams of shape ``(..., W)`` (e.g.
            ``(batch, n_classes, W)``).
        checkpoints: ``K`` prefix lengths, each in ``[1, length]``.
        length: stream length ``N``.

    Returns:
        ``float64`` array of shape ``(K, ...)``: the bipolar-decoded
        scores ``2 * ones(P) / P - 1`` per checkpoint.
    """
    counts = prefix_ones_counts(words, checkpoints, length)
    lengths = np.asarray([float(int(p)) for p in checkpoints])
    lengths = lengths.reshape((-1,) + (1,) * (counts.ndim - 1))
    return 2.0 * (counts / lengths) - 1.0


def chain_output_probability(p: np.ndarray | float, n_inputs: int) -> np.ndarray:
    """Exact output probability of the majority chain for i.i.d. inputs.

    With every product bit an independent Bernoulli(``p``), the chain
    ``a_0 = Maj(b_1, b_2, b_3)``, ``a_i = Maj(a_{i-1}, b_{2i+2}, b_{2i+3})``
    has output probability given by the recursion

    ``q_0 = 3 p^2 - 2 p^3``,
    ``q_i = q_{i-1} (1 - (1 - p)^2) + (1 - q_{i-1}) p^2``.

    This is the transfer function of the categorization block used by the
    fast statistical inference model: it is steeply monotone around
    ``p = 0.5`` for long chains, which is what lets the block preserve class
    rankings despite its approximate nature (Table 3).

    Args:
        p: probability (or array of probabilities) that a product bit is 1.
        n_inputs: number of product streams ``K`` reduced by the chain.

    Returns:
        Probability (same shape as ``p``) that the chain output bit is 1.
    """
    if n_inputs < 1:
        raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
    p = np.clip(np.asarray(p, dtype=np.float64), 0.0, 1.0)
    if n_inputs == 1:
        return p
    if n_inputs == 2:
        return p * p  # Maj(a, b, 0) == AND(a, b)
    q = 3.0 * p ** 2 - 2.0 * p ** 3
    remaining = n_inputs - 3
    win = 1.0 - (1.0 - p) ** 2   # chain stays 1: at least one of the two new bits is 1
    flip = p ** 2                # chain turns 1: both new bits are 1
    while remaining > 0:
        if remaining >= 2:
            q = q * win + (1.0 - q) * flip
            remaining -= 2
        else:
            # A single trailing input is paired with a constant 0.
            q = q * p
            remaining -= 1
    return q


class MajorityChainCategorizationBlock:
    """Categorization (FC inner-product surrogate) block.

    Args:
        n_inputs: number of product streams ``K`` reduced by the chain.
    """

    def __init__(self, n_inputs: int) -> None:
        if n_inputs < 1:
            raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
        self._n_inputs = int(n_inputs)

    @property
    def n_inputs(self) -> int:
        """Number of product streams the chain reduces."""
        return self._n_inputs

    @property
    def chain_length(self) -> int:
        """Number of 3-input majority gates in the chain."""
        if self._n_inputs <= 1:
            return 0
        return max(1, (self._n_inputs - 1 + 1) // 2)

    # -- stream-level models -------------------------------------------------

    #: Chains at least this long run on packed 64-bit words; shorter chains
    #: stay byte-per-bit (the pack/unpack passes would dominate).
    _PACKED_MIN_INPUTS = 8

    def forward_products(self, products: np.ndarray) -> np.ndarray:
        """Reduce product streams with the majority chain.

        Long chains are evaluated word-parallel on packed 64-bit words (one
        majority gate evaluates 64 cycles per word op); short chains use
        the byte-per-bit path.  Both are bit-identical.

        Args:
            products: 0/1 array of shape ``(..., K, N)``.

        Returns:
            0/1 array of shape ``(..., N)``: the chained-majority stream.
        """
        products = np.asarray(products, dtype=np.uint8)
        if products.ndim < 2:
            raise ShapeError("products must have shape (..., K, N)")
        if products.shape[-2] != self._n_inputs:
            raise ShapeError(
                f"expected {self._n_inputs} product streams, got {products.shape[-2]}"
            )
        k = self._n_inputs
        if k == 1:
            # Copy so the output never aliases the caller's product array.
            return products[..., 0, :].copy()
        if k == 2:
            # Maj(a, b, 0) == AND(a, b), matching the hardware's constant pad.
            return products[..., 0, :] & products[..., 1, :]
        if k >= self._PACKED_MIN_INPUTS:
            length = products.shape[-1]
            return unpack_bits(majority_chain_words(pack_bits(products)), length)

        def maj3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
            # On 0/1 bytes the majority is pure bitwise: (a&b) | (a&c) | (b&c).
            return (a & b) | (a & c) | (b & c)

        acc = maj3(products[..., 0, :], products[..., 1, :], products[..., 2, :])
        index = 3
        while index < k:
            if index + 1 < k:
                acc = maj3(acc, products[..., index, :], products[..., index + 1, :])
                index += 2
            else:
                acc = acc & products[..., index, :]
                index += 1
        return acc

    def forward(
        self, inputs: Bitstream | np.ndarray, weights: Bitstream | np.ndarray
    ) -> Bitstream:
        """XNOR-multiply inputs and weights, then reduce with the chain."""
        input_bits = inputs.bits if isinstance(inputs, Bitstream) else np.asarray(inputs)
        weight_bits = weights.bits if isinstance(weights, Bitstream) else np.asarray(weights)
        if input_bits.shape != weight_bits.shape:
            raise ShapeError(
                f"input shape {input_bits.shape} != weight shape {weight_bits.shape}"
            )
        products = np.logical_not(np.logical_xor(input_bits, weight_bits)).astype(np.uint8)
        return Bitstream._trusted(self.forward_products(products), "bipolar")

    def reference_output(self, product_values: np.ndarray) -> np.ndarray:
        """Reference score used for ranking comparisons: the mean product.

        The chain's decoded output is a monotone function of the mean of the
        product values; for ranking purposes the mean itself is the natural
        software reference (it orders classes identically to the full inner
        product).
        """
        return np.asarray(product_values, dtype=np.float64).mean(axis=-1)

    # -- hardware --------------------------------------------------------------

    def hardware(self, include_multipliers: bool = True) -> BlockHardware:
        """Stage-level AQFP hardware estimate of the chain (plus multipliers).

        The chain grows linearly in gates *and* depth: one majority gate and
        one phase per pair of additional inputs, plus the buffers that keep
        the not-yet-consumed product streams phase aligned while they wait
        for their gate (the dominant JJ term for long chains, exactly as the
        paper notes the categorization cost grows linearly).
        """
        k = self._n_inputs
        chain_gates = self.chain_length
        # Input i is consumed by gate ~i/2; while waiting it needs one buffer
        # per elapsed phase.  Summing the waits gives ~k^2/4 buffer-phases;
        # the hardware instead staggers the SNG conversions, so only a single
        # alignment buffer per input is charged here plus the splitters the
        # chain taps need.
        buffers = 2 * k
        jj = chain_gates * JJ_PER_MAJ3 + buffers + k // 2 * JJ_PER_SPLITTER
        depth = max(chain_gates, 1)
        total = BlockHardware(f"categorization-{k}", jj_count=jj, depth_phases=depth)
        if include_multipliers:
            multipliers = BlockHardware(
                "xnor-array", jj_count=JJ_PER_XNOR * k, depth_phases=XNOR_PHASES
            )
            total = multipliers.combine(total, name=f"categorization-{k}")
        return total

    def build_netlist(self, name: str = "categorization") -> Netlist:
        """Explicit majority-chain netlist (without the XNOR multipliers)."""
        return build_majority_chain_netlist(self._n_inputs, name)
