"""Batched NumPy kernels for the per-cycle block recurrences.

The sorter-based blocks are defined by per-clock-cycle counter recurrences
(Algorithms 1 and 2 of the paper).  Simulated naively they cost one Python
loop iteration per clock cycle *per block instance*, which is what made
bit-exact network inference "orders of magnitude slower" than the fast
statistical model.  This module provides the two batched kernels the block
classes and the network mapper build on:

* :func:`pooling_recurrence` -- the average-pooling counter has an exact
  closed form (see the function docstring), so the whole stream is computed
  with a single vectorised ``cumsum``; no per-cycle loop at all.
* :func:`feature_extraction_recurrence` -- the clipped signed accumulator
  has no closed form (the two-sided saturation is the very nonlinearity
  that realises ``clip(z, -1, 1)``), so the kernel keeps a loop over the
  stream axis but advances **all** block instances of a layer per
  iteration on contiguous time-major arrays, amortising the Python/NumPy
  dispatch overhead across the whole layer.

Both kernels accept arbitrary leading batch axes and are bit-identical to
the scalar reference models (the unit tests prove it against the explicit
sorted-vector data-path simulations).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["pooling_recurrence", "feature_extraction_recurrence"]


def pooling_recurrence(column_ones: np.ndarray, n_inputs: int) -> np.ndarray:
    """Closed-form batched evaluation of the pooling counter (Algorithm 2).

    The recurrence

    ``k_t = c_t + s_{t-1}``, ``o_t = [k_t >= M]``, ``s_t = k_t - M * o_t``

    (with ``c_t`` the number of ones in input column ``t`` and ``s_0 = 0``)
    emits exactly one ``1`` per ``M`` ones observed.  Because ``c_t <= M``
    the surplus ``s_t`` always stays in ``[0, M - 1]``, so by induction

    ``s_t = C_t mod M``  and  ``O_t = floor(C_t / M)``

    where ``C_t`` / ``O_t`` are the cumulative input-ones / output-ones
    counts.  The output stream is therefore the discrete derivative of
    ``floor(cumsum(c) / M)`` -- fully vectorisable, no per-cycle loop.

    Args:
        column_ones: integer array of shape ``(..., N)`` counting the ones
            per cycle across the ``M`` pooled streams (each entry in
            ``[0, M]``).
        n_inputs: number of pooled streams ``M``.

    Returns:
        0/1 ``uint8`` array of shape ``(..., N)``: the pooled stream.
    """
    c = np.asarray(column_ones)
    if c.ndim == 0:
        raise ShapeError("column_ones needs at least one (stream) axis")
    length = c.shape[-1]
    # The running total is bounded by M * N, so a 32-bit accumulator
    # suffices for every realistic stream length (half the memory traffic).
    accum_dtype = np.int32 if n_inputs * length < 2**31 else np.int64
    emitted = np.add.accumulate(c, axis=-1, dtype=accum_dtype)
    emitted //= n_inputs
    output = np.empty(c.shape, dtype=np.uint8)
    output[..., 0] = emitted[..., 0]
    np.subtract(
        emitted[..., 1:], emitted[..., :-1], out=output[..., 1:], casting="unsafe"
    )
    return output


def feature_extraction_recurrence(
    column_ones: np.ndarray,
    half: int,
    low: int,
    high: int,
    return_bits: bool = True,
) -> np.ndarray:
    """Batched evaluation of the feature-extraction accumulator (Algorithm 1).

    Runs the saturating counter recurrence

    ``k_t = c_t + a_{t-1}``, ``o_t = [k_t >= h + 1]``,
    ``a_t = clip(k_t - h - o_t, low, high)``

    for every block instance in the batch simultaneously.  The stream axis
    is moved to the front so each of the ``N`` iterations works on one
    contiguous ``(batch,)`` slab with in-place ufuncs -- one call advances
    every output pixel / neuron of a layer through one clock cycle.

    Args:
        column_ones: integer array of shape ``(..., N)`` counting ones per
            cycle across the (padded) product streams.
        half: the per-cycle subtraction ``h = (M - 1) / 2``.
        low: accumulator saturation floor (``-h`` signed, ``0`` unsigned).
        high: accumulator saturation ceiling (``h + 1`` signed, ``M``
            unsigned).
        return_bits: when true return the full 0/1 output streams; when
            false return only the per-instance count of output ones (used
            by the transfer-curve estimator, which never needs the bits).

    Returns:
        ``uint8`` array of shape ``(..., N)`` when ``return_bits``, else an
        ``int64`` array of shape ``(...,)`` of output-ones counts.
    """
    c = np.asarray(column_ones)
    if c.ndim == 0:
        raise ShapeError("column_ones needs at least one (stream) axis")
    length = c.shape[-1]
    batch_shape = c.shape[:-1]
    time_major = np.ascontiguousarray(np.moveaxis(c, -1, 0), dtype=np.int32)
    accumulator = np.zeros(batch_shape, dtype=np.int32)
    threshold = half + 1
    if return_bits:
        output = np.empty((length,) + batch_shape, dtype=np.uint8)
    else:
        ones_total = np.zeros(batch_shape, dtype=np.int64)
    for t in range(length):
        np.add(accumulator, time_major[t], out=accumulator)
        bit = accumulator >= threshold
        if return_bits:
            output[t] = bit
        else:
            np.add(ones_total, bit, out=ones_total, casting="unsafe")
        np.subtract(accumulator, half, out=accumulator)
        np.subtract(accumulator, bit, out=accumulator, casting="unsafe")
        np.clip(accumulator, low, high, out=accumulator)
    if return_bits:
        return np.ascontiguousarray(np.moveaxis(output, 0, -1))
    return ones_total
