"""Batched NumPy kernels for the per-cycle block recurrences.

The sorter-based blocks are defined by per-clock-cycle counter recurrences
(Algorithms 1 and 2 of the paper).  Simulated naively they cost one Python
loop iteration per clock cycle *per block instance*, which is what made
bit-exact network inference "orders of magnitude slower" than the fast
statistical model.  This module provides the two batched kernels the block
classes and the network mapper build on:

* :func:`pooling_recurrence` -- the average-pooling counter has an exact
  closed form (see the function docstring), so the whole stream is computed
  with a single vectorised ``cumsum``; no per-cycle loop at all.
* :func:`feature_extraction_recurrence` -- the clipped signed accumulator
  has no closed form (the two-sided saturation is the very nonlinearity
  that realises ``clip(z, -1, 1)``), so it is evaluated by the
  **word-blocked stepper** (:func:`feature_extraction_recurrence_words`),
  which emits packed 64-bit output words and, for the small accumulator
  state spaces of CONV-sized blocks, advances 64 cycles per Python
  iteration by precomputing every word block for all possible entering
  states at once and chaining the real trajectory with one gather per
  block.  Large state spaces (FC-sized blocks) fall back to a per-cycle
  loop that still advances all block instances of a layer per iteration.

All kernels accept arbitrary leading batch axes and are bit-identical to
the scalar reference models (the unit tests prove it against the explicit
sorted-vector data-path simulations).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.sc.packed import (
    WORD_BITS,
    ones_count,
    tail_mask,
    unpack_bits,
    words_for_length,
)

__all__ = [
    "pooling_recurrence",
    "feature_extraction_recurrence",
    "feature_extraction_recurrence_words",
]


def pooling_recurrence(column_ones: np.ndarray, n_inputs: int) -> np.ndarray:
    """Closed-form batched evaluation of the pooling counter (Algorithm 2).

    The recurrence

    ``k_t = c_t + s_{t-1}``, ``o_t = [k_t >= M]``, ``s_t = k_t - M * o_t``

    (with ``c_t`` the number of ones in input column ``t`` and ``s_0 = 0``)
    emits exactly one ``1`` per ``M`` ones observed.  Because ``c_t <= M``
    the surplus ``s_t`` always stays in ``[0, M - 1]``, so by induction

    ``s_t = C_t mod M``  and  ``O_t = floor(C_t / M)``

    where ``C_t`` / ``O_t`` are the cumulative input-ones / output-ones
    counts.  The output stream is therefore the discrete derivative of
    ``floor(cumsum(c) / M)`` -- fully vectorisable, no per-cycle loop.

    Args:
        column_ones: integer array of shape ``(..., N)`` counting the ones
            per cycle across the ``M`` pooled streams (each entry in
            ``[0, M]``).
        n_inputs: number of pooled streams ``M``.

    Returns:
        0/1 ``uint8`` array of shape ``(..., N)``: the pooled stream.
    """
    c = np.asarray(column_ones)
    if c.ndim == 0:
        raise ShapeError("column_ones needs at least one (stream) axis")
    length = c.shape[-1]
    # The running total is bounded by M * N, so a 32-bit accumulator
    # suffices for every realistic stream length (half the memory traffic).
    accum_dtype = np.int32 if n_inputs * length < 2**31 else np.int64
    emitted = np.add.accumulate(c, axis=-1, dtype=accum_dtype)
    emitted //= n_inputs
    output = np.empty(c.shape, dtype=np.uint8)
    output[..., 0] = emitted[..., 0]
    np.subtract(
        emitted[..., 1:], emitted[..., :-1], out=output[..., 1:], casting="unsafe"
    )
    return output


#: The all-states word-blocked strategy multiplies the arithmetic by the
#: number of accumulator states, so it only pays off while the state space
#: stays small (CONV-sized blocks); FC-sized blocks fall back to the
#: per-cycle stepper.
_STATES_MAX = 16

#: The all-states strategy trades ``states x`` more element arithmetic for
#: ``~N/64 x`` fewer NumPy dispatches, so it wins exactly in the
#: dispatch-bound regime: small per-iteration slabs.  Empirically the
#: break-even sits near ``states * batch ~ 8k`` elements; above it the
#: per-cycle stepper's larger slabs amortise dispatch on their own.
_STATES_MAX_SLAB = 8192


def _check_recurrence_args(
    column_ones: np.ndarray, low: int, high: int, strategy: str
) -> tuple[np.ndarray, int, tuple[int, ...], int, int]:
    """Validate stepper arguments and derive the batch/word geometry."""
    if strategy not in ("auto", "all-states", "per-cycle"):
        raise ConfigurationError(
            f"strategy must be 'auto', 'all-states' or 'per-cycle', "
            f"got {strategy!r}"
        )
    if high < low:
        raise ConfigurationError(f"high ({high}) must be >= low ({low})")
    if not low <= 0 <= high:
        # The recurrence starts from a zero accumulator; a saturation
        # domain that excludes zero has no hardware meaning, and the
        # all-states strategy could not chain from the true start state.
        raise ConfigurationError(
            f"saturation bounds must satisfy low <= 0 <= high, "
            f"got [{low}, {high}]"
        )
    c = np.asarray(column_ones)
    if c.ndim == 0:
        raise ShapeError("column_ones needs at least one (stream) axis")
    length = c.shape[-1]
    batch_shape = c.shape[:-1]
    batch = int(np.prod(batch_shape, dtype=np.int64)) if batch_shape else 1
    return c, length, batch_shape, batch, words_for_length(length)


def _resolve_strategy(
    strategy: str, n_states: int, n_words: int, batch: int
) -> str:
    """Pick the execution strategy for ``"auto"`` (see the constants above)."""
    if strategy != "auto":
        return strategy
    use_states = (
        n_states <= _STATES_MAX
        and n_words >= 2
        and n_states * batch <= _STATES_MAX_SLAB
    )
    return "all-states" if use_states else "per-cycle"


def _ws_array(workspace, key, shape, dtype) -> np.ndarray:
    """Workspace-backed buffer when a workspace is given, else a fresh one.

    Callers without a workspace must receive freshly allocated arrays
    (several of these buffers are returned to the caller, and a shared
    cache would alias results across calls).
    """
    if workspace is None:
        return np.empty(shape, dtype=dtype)
    return workspace.array(("fe-stepper",) + key, shape, dtype)


def _blocked_time_major(
    c: np.ndarray, length: int, batch: int, n_words: int, workspace=None
) -> np.ndarray:
    """``(..., N)`` counts -> contiguous ``(n_blocks, 64, batch)`` layout.

    Each all-states iteration reads one contiguous ``(batch,)`` slab; tail
    cycles are zero-padded (their output bits are masked off afterwards).
    """
    time_major = _ws_array(
        workspace, ("tm",), (n_words, WORD_BITS, batch), np.int32
    )
    flat_view = time_major.reshape(n_words * WORD_BITS, batch)
    flat_view[:length] = c.reshape(batch, length).T
    flat_view[length:] = 0
    return time_major


def _time_major_counts(
    c: np.ndarray, length: int, batch: int, workspace=None
) -> np.ndarray:
    """``(..., N)`` counts -> contiguous ``(N, batch)`` for the cycle loop.

    Keeps narrow count dtypes (``uint8``/``uint16``) narrow: the transpose
    copy is the dominant memory pass here, and the per-cycle adds accept
    any integer operand against the ``int32`` accumulator.
    """
    flat = c.reshape(batch, length).T
    if c.dtype.kind not in "iu" or c.dtype.itemsize > 4:
        dtype = np.int32
    else:
        dtype = c.dtype
    buf = _ws_array(workspace, ("tmc",), (length, batch), dtype)
    np.copyto(buf, flat, casting="unsafe")
    return buf


def _recurrence_words_all_states(
    time_major: np.ndarray, half: int, low: int, high: int, workspace=None
) -> np.ndarray:
    """All-states word-blocked stepper: 64 cycles per Python iteration.

    The accumulator recurrence is sequential in ``t``, but its state space
    is tiny (``high - low + 1`` integers).  So every 64-cycle word block is
    advanced **for all possible entering states simultaneously**, across
    all blocks at once -- 64 vectorised iterations in total regardless of
    the stream length -- and the actual trajectory is then stitched
    together with one cheap gather per block.  Output bits are assembled
    directly into packed ``uint64`` words.

    Args:
        time_major: contiguous ``(n_blocks, 64, batch)`` per-cycle column
            counts (tail cycles zero-padded).

    Returns:
        ``(batch, n_blocks)`` packed output words (tail bits unmasked).
    """
    n_blocks, _, batch = time_major.shape
    n_states = high - low + 1
    # Per (state, block, instance): the accumulator trajectory and the
    # 64 output bits of the block, as one packed word.  All per-cycle
    # transients live in (reusable) preallocated buffers: the loop below
    # performs no heap allocation at steady state.
    accumulator = _ws_array(
        workspace, ("acc",), (n_states, n_blocks, batch), np.int32
    )
    accumulator[...] = np.arange(low, high + 1, dtype=np.int32)[:, None, None]
    out_words = _ws_array(
        workspace, ("outw",), (n_states, n_blocks, batch), np.uint64
    )
    out_words[...] = 0
    bit = _ws_array(workspace, ("bit",), (n_states, n_blocks, batch), np.bool_)
    shifted = _ws_array(
        workspace, ("shift",), (n_states, n_blocks, batch), np.uint64
    )
    threshold = half + 1
    for t in range(WORD_BITS):
        np.add(accumulator, time_major[:, t][None], out=accumulator)
        np.greater_equal(accumulator, threshold, out=bit)
        np.copyto(shifted, bit, casting="unsafe")
        np.left_shift(shifted, np.uint64(t), out=shifted)
        np.bitwise_or(out_words, shifted, out=out_words)
        np.subtract(accumulator, half, out=accumulator)
        np.subtract(accumulator, bit, out=accumulator, casting="unsafe")
        # Direct ufuncs: np.clip's dispatch wrapper costs more than the
        # saturation arithmetic at these slab sizes.
        np.maximum(accumulator, low, out=accumulator)
        np.minimum(accumulator, high, out=accumulator)
    # Exit states as indices into the state axis for the chaining pass.
    np.subtract(accumulator, low, out=accumulator)
    result = _ws_array(workspace, ("res",), (batch, n_blocks), np.uint64)
    instance = np.arange(batch)
    state = np.full(batch, -low)  # the accumulator starts at zero
    for block in range(n_blocks):
        result[:, block] = out_words[state, block, instance]
        state = accumulator[state, block, instance]
    return result


def _recurrence_per_cycle(
    time_major: np.ndarray,
    half: int,
    low: int,
    high: int,
    return_bits: bool = True,
    workspace=None,
) -> np.ndarray:
    """Per-cycle stepper (large-state fallback), emitting ``uint8`` bits.

    Identical recurrence to the all-states strategy but advanced one cycle
    per Python iteration over the whole batch; used when the accumulator
    state space is too large for the all-states precomputation to pay off.
    Emits byte-per-bit output (its natural representation -- no per-cycle
    word assembly); callers that need packed words pack once at the end.

    Args:
        time_major: contiguous ``(N, batch)`` per-cycle column counts.
        return_bits: when false, return only per-instance output-ones
            counts (``int64`` of shape ``(batch,)``).

    Returns:
        ``(N, batch)`` 0/1 ``uint8`` output bits (time-major), or the
        ones counts when ``return_bits`` is false.
    """
    length, batch = time_major.shape
    accumulator = _ws_array(workspace, ("pc-acc",), (batch,), np.int32)
    accumulator[...] = 0
    threshold = half + 1
    if return_bits:
        output = _ws_array(workspace, ("pc-out",), (length, batch), np.uint8)
    else:
        ones_total = np.zeros(batch, dtype=np.int64)
    for t in range(length):
        np.add(accumulator, time_major[t], out=accumulator)
        bit = accumulator >= threshold
        if return_bits:
            output[t] = bit
        else:
            np.add(ones_total, bit, out=ones_total, casting="unsafe")
        np.subtract(accumulator, half, out=accumulator)
        np.subtract(accumulator, bit, out=accumulator, casting="unsafe")
        # Direct ufuncs: np.clip's dispatch wrapper dominates on the
        # small per-cycle slabs of this loop.
        np.maximum(accumulator, low, out=accumulator)
        np.minimum(accumulator, high, out=accumulator)
    if return_bits:
        return output
    return ones_total


def _recurrence_per_cycle_words(
    time_major: np.ndarray, half: int, low: int, high: int, workspace=None
) -> np.ndarray:
    """Per-cycle stepper emitting packed ``uint64`` words directly.

    Same recurrence as :func:`_recurrence_per_cycle`, but each output bit
    is OR-shifted straight into its packed word instead of being stored
    byte-per-bit and packed afterwards.  That removes the two
    ``(N, batch)`` byte-per-bit transients (the output array and the
    zero-padded copy ``np.packbits`` needs) which at wide slabs -- CONV
    layers flattened to hundreds of thousands of instances -- dwarf the
    packed result by ``64 x`` and turn the fallback into a memory cliff.
    Transient state is ``O(batch)``; the only output-sized buffer is the
    packed ``(batch, n_words)`` result itself.  Tail bits are never
    written, so the packed-layout invariant (tail bits zero) holds by
    construction.

    Args:
        time_major: contiguous ``(N, batch)`` per-cycle column counts.

    Returns:
        ``(batch, n_words)`` packed output words.
    """
    length, batch = time_major.shape
    n_words = words_for_length(length)
    accumulator = _ws_array(workspace, ("pcw-acc",), (batch,), np.int32)
    accumulator[...] = 0
    words = _ws_array(workspace, ("pcw-out",), (batch, n_words), np.uint64)
    words[...] = 0
    shifted = _ws_array(workspace, ("pcw-shift",), (batch,), np.uint64)
    threshold = half + 1
    for t in range(length):
        np.add(accumulator, time_major[t], out=accumulator)
        bit = accumulator >= threshold
        np.copyto(shifted, bit, casting="unsafe")
        np.left_shift(shifted, np.uint64(t % WORD_BITS), out=shifted)
        word = words[:, t // WORD_BITS]
        np.bitwise_or(word, shifted, out=word)
        np.subtract(accumulator, half, out=accumulator)
        np.subtract(accumulator, bit, out=accumulator, casting="unsafe")
        np.maximum(accumulator, low, out=accumulator)
        np.minimum(accumulator, high, out=accumulator)
    return words


def feature_extraction_recurrence_words(
    column_ones: np.ndarray,
    half: int,
    low: int,
    high: int,
    strategy: str = "auto",
    workspace=None,
) -> np.ndarray:
    """Word-blocked feature-extraction stepper with packed output.

    Evaluates the Algorithm 1 counter recurrence (see
    :func:`feature_extraction_recurrence`) and returns the output streams
    **word-packed** (64 stream bits per ``uint64``, the
    :mod:`repro.sc.packed` layout), which is what lets the packed
    inference backend keep inter-layer feature maps packed end to end.

    Two execution strategies produce bit-identical words:

    * ``"all-states"`` -- precompute every 64-cycle word block for all
      possible accumulator states at once (64 Python iterations total,
      independent of stream length), then chain the real trajectory with
      one gather per block.  The default whenever the state space
      ``high - low + 1`` is small (CONV-sized blocks).
    * ``"per-cycle"`` -- one cycle per Python iteration, kept for large
      state spaces (FC-sized blocks) and for wide slabs (CONV layers
      flattened to very many instances) where the all-states arithmetic
      blow-up outweighs the dispatch savings.  This path is word-blocked
      too: output bits are OR-shifted straight into their packed words
      (:func:`_recurrence_per_cycle_words`), never materialised
      byte-per-bit -- at wide-slab shapes the byte-per-bit route would
      allocate ``64 x`` the packed result in transients.

    Args:
        column_ones: integer array of shape ``(..., N)`` counting ones per
            cycle across the (padded) product streams.
        half: the per-cycle subtraction ``h = (M - 1) / 2``.
        low: accumulator saturation floor (``-h`` signed, ``0`` unsigned).
        high: accumulator saturation ceiling (``h + 1`` signed, ``M``
            unsigned).
        strategy: ``"auto"``, ``"all-states"`` or ``"per-cycle"``.
        workspace: optional :class:`repro.workspace.Workspace` that backs
            every internal buffer (time-major counts, all-states slabs,
            the output words), making repeated invocations allocation-free
            at steady state.  The returned array then lives in the
            workspace and is only valid until the next call that passes
            the same workspace -- callers must copy it (the packed
            backend copies each layer's stepper output into its own
            per-layer buffer).

    Returns:
        ``uint64`` array of shape ``(..., ceil(N / 64))``: the packed
        output streams, tail bits zero.
    """
    shape = _check_recurrence_args(column_ones, low, high, strategy)
    c, length, batch_shape, batch, n_words = shape
    n_states = high - low + 1
    if _resolve_strategy(strategy, n_states, n_words, batch) == "all-states":
        time_major = _blocked_time_major(c, length, batch, n_words, workspace)
        words = _recurrence_words_all_states(
            time_major, half, low, high, workspace
        )
        words[:, -1] &= tail_mask(length)
    else:
        words = _recurrence_per_cycle_words(
            _time_major_counts(c, length, batch, workspace),
            half,
            low,
            high,
            workspace=workspace,
        )
    return words.reshape(batch_shape + (n_words,))


def feature_extraction_recurrence(
    column_ones: np.ndarray,
    half: int,
    low: int,
    high: int,
    return_bits: bool = True,
) -> np.ndarray:
    """Batched evaluation of the feature-extraction accumulator (Algorithm 1).

    Runs the saturating counter recurrence

    ``k_t = c_t + a_{t-1}``, ``o_t = [k_t >= h + 1]``,
    ``a_t = clip(k_t - h - o_t, low, high)``

    for every block instance in the batch simultaneously, delegating to the
    word-blocked stepper (:func:`feature_extraction_recurrence_words`):
    small accumulator state spaces advance 64 cycles per Python iteration
    via the all-states strategy, large ones fall back to the per-cycle
    loop.  Output is bit-identical to the scalar sorted-vector block
    models either way (the unit tests prove it).

    Args:
        column_ones: integer array of shape ``(..., N)`` counting ones per
            cycle across the (padded) product streams.
        half: the per-cycle subtraction ``h = (M - 1) / 2``.
        low: accumulator saturation floor (``-h`` signed, ``0`` unsigned).
        high: accumulator saturation ceiling (``h + 1`` signed, ``M``
            unsigned).
        return_bits: when true return the full 0/1 output streams; when
            false return only the per-instance count of output ones (used
            by the transfer-curve estimator, which never needs the bits).

    Returns:
        ``uint8`` array of shape ``(..., N)`` when ``return_bits``, else an
        ``int64`` array of shape ``(...,)`` of output-ones counts.
    """
    shape = _check_recurrence_args(column_ones, low, high, "auto")
    c, length, batch_shape, batch, n_words = shape
    if _resolve_strategy("auto", high - low + 1, n_words, batch) == "all-states":
        time_major = _blocked_time_major(c, length, batch, n_words)
        words = _recurrence_words_all_states(time_major, half, low, high)
        words[:, -1] &= tail_mask(length)
        if return_bits:
            return unpack_bits(words, length).reshape(batch_shape + (length,))
        return ones_count(words).reshape(batch_shape)
    result = _recurrence_per_cycle(
        _time_major_counts(c, length, batch), half, low, high, return_bits
    )
    if return_bits:
        return np.ascontiguousarray(result.T).reshape(batch_shape + (length,))
    return result.reshape(batch_shape)
