"""Stochastic number generation block (RNG matrix + comparators).

The SNG block converts a vector of binary-stored values (weights or primary
inputs) into bipolar stochastic streams.  Randomness comes from the shared
``n_bits x n_bits`` true-RNG matrix of Fig. 8 -- each matrix provides
``4 * n_bits`` random words per cycle, so ``ceil(n_outputs / (4 * n_bits))``
matrices serve an ``n_outputs``-wide conversion -- and each output has its
own ``n_bits`` magnitude comparator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.aqfp.gates import add_magnitude_comparator
from repro.aqfp.netlist import Netlist
from repro.blocks.hardware import JJ_PER_SPLITTER, JJ_PER_TRNG, BlockHardware
from repro.errors import ConfigurationError, ShapeError
from repro.rng.matrix import RngMatrix
from repro.sc.bitstream import Bitstream
from repro.sc.encoding import BIPOLAR, validate_encoding
from repro.sc.sng import quantize_to_levels

__all__ = ["SngBlock"]

#: JJ cost of one bit of the magnitude comparator (from the balanced netlist
#: of :func:`repro.aqfp.gates.add_magnitude_comparator`: roughly one XNOR
#: macro plus an AND/OR pair and padding per bit).
JJ_PER_COMPARATOR_BIT = 46
#: Pipeline phases of an ``n``-bit comparator (ripple evaluated MSB first).
COMPARATOR_PHASES_PER_BIT = 2


class SngBlock:
    """Vector stochastic number generator backed by shared RNG matrices.

    Args:
        n_outputs: number of values converted in parallel.
        n_bits: binary precision of the stored values / random words.
        seed: seed of the software entropy model.
        encoding: stream encoding (the paper uses bipolar everywhere).
    """

    def __init__(
        self,
        n_outputs: int,
        n_bits: int = 10,
        seed: int | None = None,
        encoding: str = BIPOLAR,
    ) -> None:
        if n_outputs <= 0:
            raise ConfigurationError(f"n_outputs must be positive, got {n_outputs}")
        if n_bits < 2 or n_bits > 20:
            raise ConfigurationError(f"n_bits must be in [2, 20], got {n_bits}")
        self._n_outputs = int(n_outputs)
        self._n_bits = int(n_bits)
        self._encoding = validate_encoding(encoding)
        self._n_matrices = math.ceil(n_outputs / (4 * n_bits))
        self._matrices = [
            RngMatrix(n_bits, seed=None if seed is None else seed + index)
            for index in range(self._n_matrices)
        ]

    @property
    def n_outputs(self) -> int:
        """Number of parallel conversions."""
        return self._n_outputs

    @property
    def n_bits(self) -> int:
        """Binary precision of the conversion."""
        return self._n_bits

    @property
    def n_matrices(self) -> int:
        """Number of shared RNG matrices instantiated."""
        return self._n_matrices

    def random_words(self, length: int) -> np.ndarray:
        """Draw ``(n_outputs, length)`` random words from the shared matrices."""
        if length <= 0:
            raise ShapeError(f"length must be positive, got {length}")
        per_matrix = 4 * self._n_bits
        words = []
        for matrix in self._matrices:
            words.append(matrix.words(length).T)  # (4 * n_bits, length)
        stacked = np.concatenate(words, axis=0)
        return stacked[: self._n_outputs]

    def generate(self, values: np.ndarray, length: int) -> Bitstream:
        """Convert ``n_outputs`` values into stochastic streams of ``length``.

        Args:
            values: array of shape ``(n_outputs,)`` with values in the
                encoding's range.
            length: stream length ``N``.

        Returns:
            A :class:`Bitstream` of shape ``(n_outputs, length)``.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self._n_outputs,):
            raise ShapeError(
                f"expected values of shape ({self._n_outputs},), got {values.shape}"
            )
        thresholds = quantize_to_levels(values, self._n_bits, self._encoding)
        words = self.random_words(length)
        bits = (words < thresholds[:, None]).astype(np.uint8)
        return Bitstream(bits, self._encoding)

    # -- hardware --------------------------------------------------------------

    def hardware(self) -> BlockHardware:
        """Stage-level AQFP hardware estimate of the whole SNG block."""
        matrix_jj = sum(m.jj_count for m in self._matrices)
        comparator_jj = self._n_outputs * self._n_bits * JJ_PER_COMPARATOR_BIT
        splitter_jj = self._n_outputs * JJ_PER_SPLITTER
        depth = 1 + COMPARATOR_PHASES_PER_BIT * self._n_bits
        return BlockHardware(
            name=f"sng-{self._n_outputs}x{self._n_bits}b",
            jj_count=matrix_jj + comparator_jj + splitter_jj,
            depth_phases=depth,
        )

    def hardware_unshared(self) -> BlockHardware:
        """Hardware estimate with one private TRNG column per output.

        Used by the ablation study that quantifies the benefit of the shared
        RNG matrix.
        """
        trng_jj = self._n_outputs * self._n_bits * JJ_PER_TRNG
        comparator_jj = self._n_outputs * self._n_bits * JJ_PER_COMPARATOR_BIT
        depth = 1 + COMPARATOR_PHASES_PER_BIT * self._n_bits
        return BlockHardware(
            name=f"sng-unshared-{self._n_outputs}x{self._n_bits}b",
            jj_count=trng_jj + comparator_jj,
            depth_phases=depth,
        )

    def build_comparator_netlist(self, name: str = "sng_comparator") -> Netlist:
        """Explicit netlist of one magnitude comparator (for verification)."""
        netlist = Netlist(name)
        value_bits = [netlist.add_input(f"v{i}") for i in range(self._n_bits)]
        random_bits = [netlist.add_input(f"r{i}") for i in range(self._n_bits)]
        out = add_magnitude_comparator(netlist, value_bits, random_bits, name)
        netlist.set_outputs([out])
        return netlist
