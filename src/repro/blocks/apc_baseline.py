"""Prior-work (SC-DCNN) feature-extraction block: XNOR + APC + Btanh.

This is the CMOS-oriented design of paper Fig. 5 that the proposed sorter
block replaces.  It is kept as a functional baseline for two reasons: the
accuracy ablation (sorter block vs APC block under equal stream lengths)
and the CMOS columns of the hardware tables (costed by
:mod:`repro.cmos.sc_blocks`).

The functional model sums the product streams with the approximate parallel
counter, accumulates the counts, and applies the Btanh FSM activation to a
re-generated stream -- mirroring the binary-counter + FSM activation path of
the original design.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.sc.apc import approximate_parallel_counter
from repro.sc.bitstream import Bitstream
from repro.sc.fsm import BtanhFsm, btanh_state_count

__all__ = ["ApcFeatureExtractionBlock"]


class ApcFeatureExtractionBlock:
    """APC-based feature-extraction block (prior work baseline).

    Args:
        n_inputs: number of input-weight product streams ``M``.
        activation_scale: scale of the Btanh activation; 1.0 approximates
            ``tanh(x)`` over the summed value.
    """

    def __init__(self, n_inputs: int, activation_scale: float = 2.0) -> None:
        if n_inputs < 1:
            raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
        self._n_inputs = int(n_inputs)
        self._fsm = BtanhFsm(btanh_state_count(n_inputs, activation_scale))

    @property
    def n_inputs(self) -> int:
        """Number of product streams."""
        return self._n_inputs

    def forward_products(self, products: np.ndarray) -> np.ndarray:
        """Run the APC + Btanh pipeline over product streams.

        Args:
            products: 0/1 array of shape ``(..., M, N)``.

        Returns:
            0/1 array of shape ``(..., N)``: the activated stream.
        """
        products = np.asarray(products, dtype=np.uint8)
        if products.ndim < 2 or products.shape[-2] != self._n_inputs:
            raise ShapeError(
                f"expected products of shape (..., {self._n_inputs}, N), "
                f"got {products.shape}"
            )
        moved = np.moveaxis(products, -2, 0)  # (M, ..., N)
        counts = approximate_parallel_counter(moved)  # (..., N)
        # The binary counter activation integrates the signed per-cycle
        # contribution 2c - M of the APC count c in a saturating register;
        # the output bit is 1 while the register sits in its upper half.
        n_states = self._fsm.n_states
        half = n_states // 2
        state = np.full(counts.shape[:-1], half - 1, dtype=np.int64)
        output = np.empty(counts.shape, dtype=np.uint8)
        for t in range(counts.shape[-1]):
            step = 2 * counts[..., t] - self._n_inputs
            state = np.clip(state + step, 0, n_states - 1)
            output[..., t] = (state >= half).astype(np.uint8)
        return output

    def forward(
        self, inputs: Bitstream | np.ndarray, weights: Bitstream | np.ndarray
    ) -> Bitstream:
        """XNOR-multiply inputs and weights, then run the APC + Btanh path."""
        input_bits = inputs.bits if isinstance(inputs, Bitstream) else np.asarray(inputs)
        weight_bits = weights.bits if isinstance(weights, Bitstream) else np.asarray(weights)
        if input_bits.shape != weight_bits.shape:
            raise ShapeError(
                f"input shape {input_bits.shape} != weight shape {weight_bits.shape}"
            )
        products = np.logical_not(np.logical_xor(input_bits, weight_bits)).astype(np.uint8)
        return Bitstream(self.forward_products(products), "bipolar")

    def reference_output(self, product_values: np.ndarray) -> np.ndarray:
        """Reference activation of the baseline block: ``tanh(sum of products)``."""
        product_values = np.asarray(product_values, dtype=np.float64)
        return np.tanh(product_values.sum(axis=-1))
