"""Global experiment configuration.

The configuration object gathers the handful of knobs that recur across the
reproduction: default bit-stream length, random seed, and the technology
constants used by the AQFP and CMOS cost models.  Individual modules accept
explicit arguments everywhere; the config only provides well-documented
defaults so scripts and benchmarks stay short.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ExperimentConfig", "default_config"]

#: Bit-stream lengths used throughout the paper's accuracy tables.
PAPER_STREAM_LENGTHS = (128, 256, 512, 1024, 2048)

#: The stream length used for the paper's hardware and network evaluations.
DEFAULT_STREAM_LENGTH = 1024


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of defaults shared by examples, tests and benchmarks.

    Attributes:
        stream_length: default stochastic bit-stream length ``N``.
        weight_bits: binary precision of stored weights before SNG conversion.
        seed: base seed for deterministic experiments.
        aqfp_clock_hz: AQFP AC excitation clock frequency.
        cmos_clock_hz: clock frequency assumed for the CMOS baseline.
    """

    stream_length: int = DEFAULT_STREAM_LENGTH
    weight_bits: int = 10
    seed: int = 2019
    aqfp_clock_hz: float = 5.0e9
    cmos_clock_hz: float = 1.0e9

    def __post_init__(self) -> None:
        if self.stream_length <= 0:
            raise ConfigurationError(
                f"stream_length must be positive, got {self.stream_length}"
            )
        if self.weight_bits <= 0 or self.weight_bits > 32:
            raise ConfigurationError(
                f"weight_bits must be in [1, 32], got {self.weight_bits}"
            )
        if self.aqfp_clock_hz <= 0 or self.cmos_clock_hz <= 0:
            raise ConfigurationError("clock frequencies must be positive")

    def with_stream_length(self, stream_length: int) -> "ExperimentConfig":
        """Return a copy of this config with a different stream length."""
        return ExperimentConfig(
            stream_length=stream_length,
            weight_bits=self.weight_bits,
            seed=self.seed,
            aqfp_clock_hz=self.aqfp_clock_hz,
            cmos_clock_hz=self.cmos_clock_hz,
        )


def default_config() -> ExperimentConfig:
    """Return the configuration used by the paper's main evaluation."""
    return ExperimentConfig()
