"""Global experiment configuration.

The configuration object gathers the handful of knobs that recur across the
reproduction: default bit-stream length, random seed, and the technology
constants used by the AQFP and CMOS cost models.  Individual modules accept
explicit arguments everywhere; the config only provides well-documented
defaults so scripts and benchmarks stay short.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["ExperimentConfig", "ServiceConfig", "default_config"]

#: Bit-stream lengths used throughout the paper's accuracy tables.
PAPER_STREAM_LENGTHS = (128, 256, 512, 1024, 2048)

#: The stream length used for the paper's hardware and network evaluations.
DEFAULT_STREAM_LENGTH = 1024

#: Execution backend used when an evaluation does not name one explicitly.
#: ``"sc-fast"`` is the paper's full-test-set accuracy model; the
#: bit-exact backends (``"bit-exact-packed"`` being the fast one) simulate
#: actual streams.  See :mod:`repro.backends` for the registry.
DEFAULT_BACKEND = "sc-fast"


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of defaults shared by examples, tests and benchmarks.

    Attributes:
        stream_length: default stochastic bit-stream length ``N``.
        weight_bits: binary precision of stored weights before SNG conversion.
        seed: base seed for deterministic experiments.
        aqfp_clock_hz: AQFP AC excitation clock frequency.
        cmos_clock_hz: clock frequency assumed for the CMOS baseline.
        default_backend: registry name of the execution backend used when
            an evaluation does not name one (validated against the
            registry at engine construction, not here, so the config stays
            import-light).
    """

    stream_length: int = DEFAULT_STREAM_LENGTH
    weight_bits: int = 10
    seed: int = 2019
    aqfp_clock_hz: float = 5.0e9
    cmos_clock_hz: float = 1.0e9
    default_backend: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        if self.stream_length <= 0:
            raise ConfigurationError(
                f"stream_length must be positive, got {self.stream_length}"
            )
        if self.weight_bits <= 0 or self.weight_bits > 32:
            raise ConfigurationError(
                f"weight_bits must be in [1, 32], got {self.weight_bits}"
            )
        if self.aqfp_clock_hz <= 0 or self.cmos_clock_hz <= 0:
            raise ConfigurationError("clock frequencies must be positive")
        if not isinstance(self.default_backend, str) or not self.default_backend:
            raise ConfigurationError(
                f"default_backend must be a non-empty backend name, "
                f"got {self.default_backend!r}"
            )

    def with_stream_length(self, stream_length: int) -> "ExperimentConfig":
        """Return a copy of this config with a different stream length."""
        return replace(self, stream_length=stream_length)

    def with_backend(self, default_backend: str) -> "ExperimentConfig":
        """Return a copy of this config with a different default backend."""
        return replace(self, default_backend=default_backend)


#: Stream-length checkpoint fractions evaluated by the progressive
#: early-exit policy (see :mod:`repro.serve`): ``N/8, N/4, N/2, N``.
DEFAULT_CHECKPOINT_FRACTIONS = (0.125, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the micro-batching inference service (:mod:`repro.serve`).

    Attributes:
        backend: registry name of the execution backend each worker
            replica runs, or a tuple of names to shard the worker pool
            across several backends (workers are assigned round-robin).
        max_batch_size: the scheduler dispatches a merged batch as soon
            as this many images are pending.
        max_wait_ms: ... or once the oldest queued request has waited
            this long (the classic micro-batching latency/throughput
            trade-off).
        num_workers: worker threads, each owning one backend replica.
        cache_capacity: entries held by the LRU result cache (keyed on
            image digest, backend name and stream length); ``0`` disables
            caching.
        early_exit: evaluate requests at stream-length checkpoints and
            answer early once the prediction stabilises (only effective
            on backends whose ``progressive`` capability flag is set).
        checkpoint_fractions: increasing fractions of the stream length
            at which scores are evaluated; a final full-length checkpoint
            is always included.
        margin: minimum gap between the top-1 and top-2 class scores for
            an early exit to fire.
        stable_checkpoints: number of consecutive checkpoints whose
            predicted class must agree (ending at the exit checkpoint).
    """

    backend: str | tuple[str, ...] = DEFAULT_BACKEND
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    num_workers: int = 2
    cache_capacity: int = 1024
    early_exit: bool = True
    checkpoint_fractions: tuple[float, ...] = DEFAULT_CHECKPOINT_FRACTIONS
    margin: float = 0.1
    stable_checkpoints: int = 2

    def __post_init__(self) -> None:
        names = (
            (self.backend,) if isinstance(self.backend, str) else self.backend
        )
        if not names or not all(
            isinstance(n, str) and n for n in names
        ):
            raise ConfigurationError(
                f"backend must be a non-empty backend name (or a tuple of "
                f"them), got {self.backend!r}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.cache_capacity < 0:
            raise ConfigurationError(
                f"cache_capacity must be >= 0, got {self.cache_capacity}"
            )
        if not self.checkpoint_fractions or any(
            not 0.0 < f <= 1.0 for f in self.checkpoint_fractions
        ):
            raise ConfigurationError(
                f"checkpoint_fractions must lie in (0, 1], got "
                f"{self.checkpoint_fractions}"
            )
        if any(
            b <= a
            for a, b in zip(self.checkpoint_fractions, self.checkpoint_fractions[1:])
        ):
            raise ConfigurationError(
                f"checkpoint_fractions must be strictly increasing, got "
                f"{self.checkpoint_fractions}"
            )
        if self.margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {self.margin}")
        if self.stable_checkpoints < 1:
            raise ConfigurationError(
                f"stable_checkpoints must be >= 1, got {self.stable_checkpoints}"
            )

    @property
    def backend_names(self) -> tuple[str, ...]:
        """The backend shard names as a tuple (single names wrapped)."""
        if isinstance(self.backend, str):
            return (self.backend,)
        return tuple(self.backend)


def default_config() -> ExperimentConfig:
    """Return the configuration used by the paper's main evaluation."""
    return ExperimentConfig()
