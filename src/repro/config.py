"""Global experiment configuration and typed request options.

The configuration objects gather the handful of knobs that recur across
the reproduction: default bit-stream length, random seed, the technology
constants used by the AQFP and CMOS cost models, the serving-layer knobs
(:class:`ServiceConfig`), and the per-request inference options
(:class:`PredictOptions`).  Individual modules accept explicit arguments
everywhere; the config only provides well-documented defaults so scripts
and benchmarks stay short.  This module stays import-light (errors only)
so every layer -- backends, serving, the public API -- can depend on it
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = [
    "ExperimentConfig",
    "ServiceConfig",
    "FleetConfig",
    "HttpConfig",
    "PredictOptions",
    "ResolvedPredictOptions",
    "resolve_checkpoints",
    "default_config",
]

#: Bit-stream lengths used throughout the paper's accuracy tables.
PAPER_STREAM_LENGTHS = (128, 256, 512, 1024, 2048)

#: The stream length used for the paper's hardware and network evaluations.
DEFAULT_STREAM_LENGTH = 1024

#: Execution backend used when an evaluation does not name one explicitly.
#: ``"sc-fast"`` is the paper's full-test-set accuracy model; the
#: bit-exact backends (``"bit-exact-packed"`` being the fast one) simulate
#: actual streams.  See :mod:`repro.backends` for the registry.
DEFAULT_BACKEND = "sc-fast"


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of defaults shared by examples, tests and benchmarks.

    Attributes:
        stream_length: default stochastic bit-stream length ``N``.
        weight_bits: binary precision of stored weights before SNG conversion.
        seed: base seed for deterministic experiments.
        aqfp_clock_hz: AQFP AC excitation clock frequency.
        cmos_clock_hz: clock frequency assumed for the CMOS baseline.
        default_backend: registry name of the execution backend used when
            an evaluation does not name one (validated against the
            registry at engine construction, not here, so the config stays
            import-light).
    """

    stream_length: int = DEFAULT_STREAM_LENGTH
    weight_bits: int = 10
    seed: int = 2019
    aqfp_clock_hz: float = 5.0e9
    cmos_clock_hz: float = 1.0e9
    default_backend: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        if self.stream_length <= 0:
            raise ConfigurationError(
                f"stream_length must be positive, got {self.stream_length}"
            )
        if self.weight_bits <= 0 or self.weight_bits > 32:
            raise ConfigurationError(
                f"weight_bits must be in [1, 32], got {self.weight_bits}"
            )
        if self.aqfp_clock_hz <= 0 or self.cmos_clock_hz <= 0:
            raise ConfigurationError("clock frequencies must be positive")
        if not isinstance(self.default_backend, str) or not self.default_backend:
            raise ConfigurationError(
                f"default_backend must be a non-empty backend name, "
                f"got {self.default_backend!r}"
            )

    def with_stream_length(self, stream_length: int) -> "ExperimentConfig":
        """Return a copy of this config with a different stream length."""
        return replace(self, stream_length=stream_length)

    def with_backend(self, default_backend: str) -> "ExperimentConfig":
        """Return a copy of this config with a different default backend."""
        return replace(self, default_backend=default_backend)


#: Stream-length checkpoint fractions evaluated by the progressive
#: early-exit policy (see :mod:`repro.serve`): ``N/8, N/4, N/2, N``.
DEFAULT_CHECKPOINT_FRACTIONS = (0.125, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the micro-batching inference service (:mod:`repro.serve`).

    Attributes:
        backend: registry name of the execution backend each worker
            replica runs, or a tuple of names to shard the worker pool
            across several backends (workers are assigned round-robin).
        max_batch_size: the scheduler dispatches a merged batch as soon
            as this many images are pending.
        max_wait_ms: ... or once the oldest queued request has waited
            this long (the classic micro-batching latency/throughput
            trade-off).
        num_workers: worker threads, each owning one backend replica.
        cache_capacity: entries held by the LRU result cache (keyed on
            image digest, backend name and stream length); ``0`` disables
            caching.
        early_exit: evaluate requests at stream-length checkpoints and
            answer early once the prediction stabilises (only effective
            on backends whose ``progressive`` capability flag is set).
        checkpoint_fractions: increasing fractions of the stream length
            at which scores are evaluated; a final full-length checkpoint
            is always included.
        margin: minimum gap between the top-1 and top-2 class scores for
            an early exit to fire.
        stable_checkpoints: number of consecutive checkpoints whose
            predicted class must agree (ending at the exit checkpoint).
        max_queue_depth: bounded admission -- maximum number of admitted,
            unfinished requests; a submit beyond it raises
            :class:`~repro.errors.ServiceOverloadError` in the caller
            (``None`` = unbounded, the pre-fault-tolerance behaviour).
        shed_unmeetable_deadlines: reject (rather than queue) requests
            whose ``deadline_ms`` cannot even afford the first checkpoint
            under the service's EWMA cycles/sec estimate.
        max_replica_restarts: per-replica budget of automatic restarts
            after unexpected backend exceptions (``0`` disables
            supervision restarts).
        restart_backoff_ms: base of the exponential backoff slept before
            restart ``k`` of a replica (``base * 2**k``, capped at 1 s).
        max_batch_retries: times a failed merged-batch bucket is retried
            (on the restarted replica) before its requests' futures fail
            with a typed :class:`~repro.errors.InferenceError`.
        degrade_queue_depth: overload controller trigger -- when more
            than this many admitted requests are unfinished, progressive
            replicas answer at reduced checkpoint schedules
            (``None`` = queue depth never triggers degradation).
        degrade_p99_ms: ... or when the recent p99 latency exceeds this
            many milliseconds (``None`` = latency never triggers it).
        degraded_max_fraction: under degradation, checkpoint schedules
            are capped at this fraction of the stream length (default
            ``0.5``: answers come from the ``N/8 .. N/2`` prefixes).
            Degraded results are never stored in the result cache.
        fault_plan: optional fault-injection hook
            (:class:`repro.serve.faults.FaultPlan`, or any object with a
            compatible ``before_batch(worker, replica)`` method) invoked
            before every bucket execution attempt -- the chaos-testing
            seam; ``None`` in production.
        trace_sample_rate: fraction of admitted requests that record a
            full span trace (:class:`repro.obs.Tracer`); ``0.0``
            (default) disables tracing entirely -- untraced requests pay
            a single float comparison -- and ``1.0`` traces every
            request.
        trace_capacity: completed traces retained in the tracer's ring
            buffer (oldest evicted first).
        trace_seed: seed of the tracer's sampling RNG, for reproducible
            fractional sampling decisions (``None`` = nondeterministic).
        event_log_path: when set, a JSONL structured event log
            (:class:`repro.obs.JsonlEventLog`) receives every sampled
            trace and every fault/overload event (sheds, restarts,
            degradations) plus warnings logged under the ``repro``
            logger hierarchy while the service runs.
    """

    backend: str | tuple[str, ...] = DEFAULT_BACKEND
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    num_workers: int = 2
    cache_capacity: int = 1024
    early_exit: bool = True
    checkpoint_fractions: tuple[float, ...] = DEFAULT_CHECKPOINT_FRACTIONS
    margin: float = 0.1
    stable_checkpoints: int = 2
    max_queue_depth: int | None = None
    shed_unmeetable_deadlines: bool = False
    max_replica_restarts: int = 3
    restart_backoff_ms: float = 10.0
    max_batch_retries: int = 1
    degrade_queue_depth: int | None = None
    degrade_p99_ms: float | None = None
    degraded_max_fraction: float = 0.5
    fault_plan: object | None = None
    trace_sample_rate: float = 0.0
    trace_capacity: int = 256
    trace_seed: int | None = None
    event_log_path: str | None = None

    def __post_init__(self) -> None:
        names = (
            (self.backend,) if isinstance(self.backend, str) else self.backend
        )
        if not names or not all(
            isinstance(n, str) and n for n in names
        ):
            raise ConfigurationError(
                f"backend must be a non-empty backend name (or a tuple of "
                f"them), got {self.backend!r}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.cache_capacity < 0:
            raise ConfigurationError(
                f"cache_capacity must be >= 0, got {self.cache_capacity}"
            )
        if not self.checkpoint_fractions or any(
            not 0.0 < f <= 1.0 for f in self.checkpoint_fractions
        ):
            raise ConfigurationError(
                f"checkpoint_fractions must lie in (0, 1], got "
                f"{self.checkpoint_fractions}"
            )
        if any(
            b <= a
            for a, b in zip(self.checkpoint_fractions, self.checkpoint_fractions[1:])
        ):
            raise ConfigurationError(
                f"checkpoint_fractions must be strictly increasing, got "
                f"{self.checkpoint_fractions}"
            )
        if self.margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {self.margin}")
        if self.stable_checkpoints < 1:
            raise ConfigurationError(
                f"stable_checkpoints must be >= 1, got {self.stable_checkpoints}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_replica_restarts < 0:
            raise ConfigurationError(
                f"max_replica_restarts must be >= 0, got "
                f"{self.max_replica_restarts}"
            )
        if self.restart_backoff_ms < 0:
            raise ConfigurationError(
                f"restart_backoff_ms must be >= 0, got "
                f"{self.restart_backoff_ms}"
            )
        if self.max_batch_retries < 0:
            raise ConfigurationError(
                f"max_batch_retries must be >= 0, got {self.max_batch_retries}"
            )
        if self.degrade_queue_depth is not None and self.degrade_queue_depth < 1:
            raise ConfigurationError(
                f"degrade_queue_depth must be >= 1, got "
                f"{self.degrade_queue_depth}"
            )
        if self.degrade_p99_ms is not None and not self.degrade_p99_ms > 0:
            raise ConfigurationError(
                f"degrade_p99_ms must be > 0, got {self.degrade_p99_ms}"
            )
        if not 0.0 < self.degraded_max_fraction <= 1.0:
            raise ConfigurationError(
                f"degraded_max_fraction must lie in (0, 1], got "
                f"{self.degraded_max_fraction}"
            )
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigurationError(
                f"trace_sample_rate must lie in [0, 1], got "
                f"{self.trace_sample_rate}"
            )
        if self.trace_capacity < 1:
            raise ConfigurationError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )
        # Duck-typed so this module stays import-light (the concrete
        # FaultPlan lives above the config layer, in repro.serve.faults).
        if self.fault_plan is not None and not callable(
            getattr(self.fault_plan, "before_batch", None)
        ):
            raise ConfigurationError(
                "fault_plan must expose a before_batch(worker, replica) "
                f"method (see repro.serve.faults.FaultPlan), got "
                f"{self.fault_plan!r}"
            )

    @property
    def backend_names(self) -> tuple[str, ...]:
        """The backend shard names as a tuple (single names wrapped)."""
        if isinstance(self.backend, str):
            return (self.backend,)
        return tuple(self.backend)


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the multi-process worker fleet (:mod:`repro.serve.fleet`).

    A :class:`~repro.serve.fleet.FleetRouter` spawns ``num_workers``
    supervised worker *processes*, each hosting its own in-process
    :class:`~repro.serve.ScInferenceService` (configured by
    :attr:`service`) rehydrated bit-identically from a shared model
    artifact.  The router owns the process-level robustness contract:
    heartbeat health checks, crash/hang detection with restart budgets,
    request retry and hedging, bounded admission, and graceful drain.

    Attributes:
        num_workers: worker processes the router spawns and supervises.
        service: the :class:`ServiceConfig` every worker process runs its
            in-process service with (``None`` = service defaults with the
            bit-exact packed backend).  Its ``fault_plan`` must be
            ``None`` -- in-process injection does not cross the process
            boundary; use the fleet-level :attr:`fault_plan` instead.
        heartbeat_interval_ms: period of the router's health-check pings.
        heartbeat_misses: consecutive unanswered pings after which a
            worker is declared hung, killed and restarted.
        worker_start_timeout_s: seconds a freshly spawned worker may take
            to load the artifact and report ready before the router gives
            up on it (counts against the slot's restart budget).
        max_worker_restarts: per-slot budget of automatic restarts after
            a crash, hang or failed start (the process-granularity analogue
            of ``ServiceConfig.max_replica_restarts``).
        restart_backoff_ms: base of the exponential backoff slept before
            restart ``k`` of a slot (``base * 2**k``, capped at 5 s).
        max_request_retries: times a request stranded by a dying worker is
            re-dispatched to another worker before its future fails with a
            typed :class:`~repro.errors.FleetError`; expired deadlines are
            never retried (deadline-aware failover).
        hedge_after_ms: optional tail-latency hedging -- a request still
            unanswered after this many milliseconds is speculatively
            dispatched to a second healthy worker; the first response
            wins (``None`` disables hedging).  Bit-exact workers make the
            duplicate answer harmless by construction.
        max_inflight: router-level bounded admission -- a submit beyond
            this many unresolved requests raises
            :class:`~repro.errors.ServiceOverloadError` in the caller
            (``None`` = unbounded).
        max_worker_inflight: per-worker dispatch window -- the router
            never has more than this many requests outstanding on one
            worker; the rest wait in the router's queue.  Flow control
            with two jobs: a worker death strands at most a window of
            requests (bounding retry storms), and a restarting slot finds
            work still queued instead of a fleet-mate having swallowed
            the backlog.  ``None`` derives ``2 *
            service.max_batch_size``.
        drain_timeout_s: seconds a graceful drain waits for in-flight
            requests (and worker exits) before escalating to kill.
        fault_plan: optional process-level fault injection hook (an object
            with a ``before_dispatch(worker, handle)`` method, e.g.
            :class:`repro.serve.faults.FaultPlan` carrying
            :class:`~repro.serve.faults.WorkerKill` /
            :class:`~repro.serve.faults.WorkerHang` /
            :class:`~repro.serve.faults.SlowWorker` injectors) consulted
            before every request dispatch; ``None`` in production.
    """

    num_workers: int = 2
    service: "ServiceConfig | None" = None
    heartbeat_interval_ms: float = 100.0
    heartbeat_misses: int = 5
    worker_start_timeout_s: float = 120.0
    max_worker_restarts: int = 3
    restart_backoff_ms: float = 50.0
    max_request_retries: int = 2
    hedge_after_ms: float | None = None
    max_inflight: int | None = None
    max_worker_inflight: int | None = None
    drain_timeout_s: float = 30.0
    fault_plan: object | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.service is not None:
            if not isinstance(self.service, ServiceConfig):
                raise ConfigurationError(
                    f"service must be a ServiceConfig, got {self.service!r}"
                )
            if self.service.fault_plan is not None:
                raise ConfigurationError(
                    "service.fault_plan cannot cross the process boundary; "
                    "put process-level injectors on FleetConfig.fault_plan"
                )
        if self.heartbeat_interval_ms <= 0:
            raise ConfigurationError(
                f"heartbeat_interval_ms must be > 0, got "
                f"{self.heartbeat_interval_ms}"
            )
        if self.heartbeat_misses < 1:
            raise ConfigurationError(
                f"heartbeat_misses must be >= 1, got {self.heartbeat_misses}"
            )
        if self.worker_start_timeout_s <= 0:
            raise ConfigurationError(
                f"worker_start_timeout_s must be > 0, got "
                f"{self.worker_start_timeout_s}"
            )
        if self.max_worker_restarts < 0:
            raise ConfigurationError(
                f"max_worker_restarts must be >= 0, got "
                f"{self.max_worker_restarts}"
            )
        if self.restart_backoff_ms < 0:
            raise ConfigurationError(
                f"restart_backoff_ms must be >= 0, got "
                f"{self.restart_backoff_ms}"
            )
        if self.max_request_retries < 0:
            raise ConfigurationError(
                f"max_request_retries must be >= 0, got "
                f"{self.max_request_retries}"
            )
        if self.hedge_after_ms is not None and not self.hedge_after_ms > 0:
            raise ConfigurationError(
                f"hedge_after_ms must be > 0, got {self.hedge_after_ms}"
            )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_worker_inflight is not None and self.max_worker_inflight < 1:
            raise ConfigurationError(
                f"max_worker_inflight must be >= 1, got "
                f"{self.max_worker_inflight}"
            )
        if self.drain_timeout_s <= 0:
            raise ConfigurationError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}"
            )
        if self.fault_plan is not None and not callable(
            getattr(self.fault_plan, "before_dispatch", None)
        ):
            raise ConfigurationError(
                "fault_plan must expose a before_dispatch(worker, handle) "
                f"method (see repro.serve.faults.FaultPlan), got "
                f"{self.fault_plan!r}"
            )

    @property
    def worker_service(self) -> ServiceConfig:
        """The worker-process service config (defaults resolved)."""
        if self.service is not None:
            return self.service
        return ServiceConfig(backend="bit-exact-packed", num_workers=1)

    @property
    def worker_window(self) -> int:
        """Resolved per-worker dispatch window (see
        :attr:`max_worker_inflight`)."""
        if self.max_worker_inflight is not None:
            return self.max_worker_inflight
        return 2 * self.worker_service.max_batch_size


@dataclass(frozen=True)
class HttpConfig:
    """Knobs of the asyncio HTTP front end (:mod:`repro.serve.http`).

    Attributes:
        host: interface the listener binds (default loopback).
        port: TCP port; ``0`` binds an ephemeral port (the bound port is
            published on :attr:`repro.serve.http.ScHttpServer.port` after
            start -- what the tests and benchmarks use).
        max_body_bytes: largest accepted request body; a larger
            ``Content-Length`` is rejected with HTTP 413 before a single
            body byte is read.
        request_timeout_s: server-side cap on how long a unary request
            may wait for its service future when the request carries no
            ``deadline_ms`` of its own.
        deadline_grace_ms: extra wall-clock granted on top of a request's
            ``deadline_ms`` before the wire layer gives up and answers
            HTTP 504 -- the service normally answers expired deadlines
            *itself* (capped at the first checkpoint), so this only fires
            when the future is truly stuck.
        drain_timeout_s: graceful-drain budget: seconds
            :meth:`~repro.serve.http.ScHttpServer.drain` waits for open
            connections (streams included) to finish before force-closing
            them.
        reload_interval_s: when set, the server polls
            :meth:`~repro.serve.registry.ModelRegistry.scan` at this
            period so manifest changes hot-reload without an operator
            call (``None`` disables polling; ``scan()`` can still be
            invoked directly).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_body_bytes: int = 8 * 1024 * 1024
    request_timeout_s: float = 300.0
    deadline_grace_ms: float = 1000.0
    drain_timeout_s: float = 30.0
    reload_interval_s: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ConfigurationError(
                f"host must be a non-empty string, got {self.host!r}"
            )
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                f"port must lie in [0, 65535], got {self.port}"
            )
        if self.max_body_bytes < 1:
            raise ConfigurationError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if not self.request_timeout_s > 0:
            raise ConfigurationError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )
        if self.deadline_grace_ms < 0:
            raise ConfigurationError(
                f"deadline_grace_ms must be >= 0, got {self.deadline_grace_ms}"
            )
        if not self.drain_timeout_s > 0:
            raise ConfigurationError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}"
            )
        if self.reload_interval_s is not None and not self.reload_interval_s > 0:
            raise ConfigurationError(
                f"reload_interval_s must be > 0, got {self.reload_interval_s}"
            )


def resolve_checkpoints(
    stream_length: int, fractions=DEFAULT_CHECKPOINT_FRACTIONS
) -> tuple[int, ...]:
    """Concrete checkpoint schedule for a stream length.

    Fractions are rounded to whole cycles, clamped to ``[1, N]``,
    deduplicated, and a final full-length checkpoint is appended when the
    schedule does not already end at ``N`` (the early-exit fallback must
    always be the exact full-stream evaluation).

    Args:
        stream_length: stochastic stream length ``N``.
        fractions: increasing fractions of ``N`` in ``(0, 1]``.

    Returns:
        Strictly increasing checkpoint cycle counts ending at ``N``.
    """
    if stream_length <= 0:
        raise ConfigurationError(
            f"stream_length must be positive, got {stream_length}"
        )
    if not fractions:
        raise ConfigurationError("at least one checkpoint fraction is required")
    points: list[int] = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"checkpoint fractions must lie in (0, 1], got {fraction}"
            )
        p = min(stream_length, max(1, int(round(fraction * stream_length))))
        if not points or p > points[-1]:
            points.append(p)
    if points[-1] != stream_length:
        points.append(stream_length)
    return tuple(points)


@dataclass(frozen=True)
class PredictOptions:
    """Typed per-request inference options.

    One validated bundle carried from the public API (`repro.api`) through
    the execution backends and the serving layer, replacing the ad-hoc
    keyword threading that used to stop at the service boundary.  Every
    field defaults to ``None`` = "use the model / service default", so
    ``PredictOptions()`` is always a no-op.

    Attributes:
        stream_length: evaluate the request at this stream length instead
            of the model's full ``N`` (must be ``<= N``; prefixes of the
            packed output streams make this exact for progressive
            bit-exact backends).
        checkpoints: explicit stream-length checkpoint schedule (strictly
            increasing cycles); the effective stream length is appended
            when the schedule stops short of it.
        early_exit: override the service's early-exit flag for this
            request.
        deadline_ms: total latency budget of the request in milliseconds.
            The serving layer converts the remaining budget at evaluation
            time into a cap on the exit checkpoint (an expired deadline
            exits at the *first* checkpoint), trading precision for
            punctuality per request.  Results evaluated under a deadline
            are never stored in the result cache.
        workers: shard the evaluation across this many workers
            (`repro.backends.parallel`); honoured by
            :meth:`repro.api.Session.predict` at backend selection time
            and ignored by :class:`~repro.serve.ScInferenceService`,
            whose replica pool is fixed at construction.
        executor: how the ``workers`` shards run: ``"process"`` (process
            pool + shared-memory buffers) or ``"thread"`` (thread pool
            over in-process replicas; effective when the compiled native
            kernels release the GIL).  ``None`` picks threads for the
            native tier and processes otherwise (the
            :func:`repro.backends.resolve_parallel_backend` policy).

    Raises:
        ConfigurationError: on any out-of-domain field (non-positive
            stream length or deadline, unsorted checkpoints, ...);
            validation happens once, at construction.
    """

    stream_length: int | None = None
    checkpoints: tuple[int, ...] | None = None
    early_exit: bool | None = None
    deadline_ms: float | None = None
    workers: int | None = None
    executor: str | None = None

    def __post_init__(self) -> None:
        if self.stream_length is not None and self.stream_length < 1:
            raise ConfigurationError(
                f"stream_length must be >= 1, got {self.stream_length}"
            )
        if self.checkpoints is not None:
            points = tuple(int(p) for p in self.checkpoints)
            if not points:
                raise ConfigurationError(
                    "checkpoints must name at least one cycle count"
                )
            if any(p < 1 for p in points):
                raise ConfigurationError(
                    f"checkpoints must be >= 1, got {points}"
                )
            if any(b <= a for a, b in zip(points, points[1:])):
                raise ConfigurationError(
                    f"checkpoints must be strictly increasing, got {points}"
                )
            object.__setattr__(self, "checkpoints", points)
        if self.deadline_ms is not None and not self.deadline_ms > 0:
            raise ConfigurationError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.executor not in (None, "process", "thread"):
            raise ConfigurationError(
                f"executor must be 'process' or 'thread', got {self.executor!r}"
            )

    def resolve(
        self,
        stream_length: int,
        checkpoint_fractions: tuple[float, ...] = DEFAULT_CHECKPOINT_FRACTIONS,
        early_exit: bool = False,
    ) -> "ResolvedPredictOptions":
        """Resolve against a model's stream length and serving defaults.

        Args:
            stream_length: the model's full stream length ``N``.
            checkpoint_fractions: default schedule fractions used when the
                request names no explicit checkpoints.
            early_exit: default early-exit behaviour when the request
                leaves :attr:`early_exit` unset.

        Returns:
            The concrete evaluation plan: an effective stream length
            ``<= N``, a checkpoint schedule ending at it, and the resolved
            early-exit / deadline / workers fields.

        Raises:
            ConfigurationError: when the requested stream length exceeds
                ``N`` or the checkpoints overrun the effective stream
                length.
        """
        effective_n = self.stream_length or int(stream_length)
        if effective_n > stream_length:
            raise ConfigurationError(
                f"requested stream_length {effective_n} exceeds the model's "
                f"stream length {stream_length}"
            )
        if self.checkpoints is not None:
            points = self.checkpoints
            if points[-1] > effective_n:
                raise ConfigurationError(
                    f"checkpoints {points} overrun the effective stream "
                    f"length {effective_n}"
                )
            if points[-1] != effective_n:
                points = points + (effective_n,)
        else:
            points = resolve_checkpoints(effective_n, checkpoint_fractions)
        return ResolvedPredictOptions(
            stream_length=effective_n,
            checkpoints=points,
            early_exit=(
                early_exit if self.early_exit is None else bool(self.early_exit)
            ),
            deadline_ms=self.deadline_ms,
            workers=self.workers,
            executor=self.executor,
            explicit_schedule=(
                self.stream_length is not None or self.checkpoints is not None
            ),
        )


@dataclass(frozen=True)
class ResolvedPredictOptions:
    """A :class:`PredictOptions` resolved against one model / service.

    Attributes:
        stream_length: effective stream length of the request (``<= N``).
        checkpoints: strictly increasing schedule ending at
            :attr:`stream_length`.
        early_exit: whether the stability + margin policy may exit early.
        deadline_ms: request latency budget (``None`` = none).
        workers: requested worker shards (``None`` = backend default).
        executor: requested shard executor (``"process"`` / ``"thread"``
            / ``None`` = pick by inner backend).
        explicit_schedule: the request named its own stream length or
            checkpoints (and therefore *requires* a progressive backend
            rather than degrading to a full forward pass).
    """

    stream_length: int
    checkpoints: tuple[int, ...]
    early_exit: bool
    deadline_ms: float | None
    workers: int | None
    executor: str | None = None
    explicit_schedule: bool = False

    @property
    def cache_token(self) -> tuple:
        """The effective-options part of the serve result-cache key.

        Two requests whose tokens differ must never share a cache entry:
        the scores stored for one schedule (say an early exit at ``N/8``)
        are stale for a request demanding another -- the stale-hit hazard
        the options-aware cache key exists to close.
        """
        return (self.stream_length, self.checkpoints, self.early_exit)

    @property
    def cacheable(self) -> bool:
        """Deadline-budgeted results are wall-clock dependent: never cached."""
        return self.deadline_ms is None


def default_config() -> ExperimentConfig:
    """Return the configuration used by the paper's main evaluation."""
    return ExperimentConfig()
