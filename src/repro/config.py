"""Global experiment configuration.

The configuration object gathers the handful of knobs that recur across the
reproduction: default bit-stream length, random seed, and the technology
constants used by the AQFP and CMOS cost models.  Individual modules accept
explicit arguments everywhere; the config only provides well-documented
defaults so scripts and benchmarks stay short.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["ExperimentConfig", "default_config"]

#: Bit-stream lengths used throughout the paper's accuracy tables.
PAPER_STREAM_LENGTHS = (128, 256, 512, 1024, 2048)

#: The stream length used for the paper's hardware and network evaluations.
DEFAULT_STREAM_LENGTH = 1024

#: Execution backend used when an evaluation does not name one explicitly.
#: ``"sc-fast"`` is the paper's full-test-set accuracy model; the
#: bit-exact backends (``"bit-exact-packed"`` being the fast one) simulate
#: actual streams.  See :mod:`repro.backends` for the registry.
DEFAULT_BACKEND = "sc-fast"


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of defaults shared by examples, tests and benchmarks.

    Attributes:
        stream_length: default stochastic bit-stream length ``N``.
        weight_bits: binary precision of stored weights before SNG conversion.
        seed: base seed for deterministic experiments.
        aqfp_clock_hz: AQFP AC excitation clock frequency.
        cmos_clock_hz: clock frequency assumed for the CMOS baseline.
        default_backend: registry name of the execution backend used when
            an evaluation does not name one (validated against the
            registry at engine construction, not here, so the config stays
            import-light).
    """

    stream_length: int = DEFAULT_STREAM_LENGTH
    weight_bits: int = 10
    seed: int = 2019
    aqfp_clock_hz: float = 5.0e9
    cmos_clock_hz: float = 1.0e9
    default_backend: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        if self.stream_length <= 0:
            raise ConfigurationError(
                f"stream_length must be positive, got {self.stream_length}"
            )
        if self.weight_bits <= 0 or self.weight_bits > 32:
            raise ConfigurationError(
                f"weight_bits must be in [1, 32], got {self.weight_bits}"
            )
        if self.aqfp_clock_hz <= 0 or self.cmos_clock_hz <= 0:
            raise ConfigurationError("clock frequencies must be positive")
        if not isinstance(self.default_backend, str) or not self.default_backend:
            raise ConfigurationError(
                f"default_backend must be a non-empty backend name, "
                f"got {self.default_backend!r}"
            )

    def with_stream_length(self, stream_length: int) -> "ExperimentConfig":
        """Return a copy of this config with a different stream length."""
        return replace(self, stream_length=stream_length)

    def with_backend(self, default_backend: str) -> "ExperimentConfig":
        """Return a copy of this config with a different default backend."""
        return replace(self, default_backend=default_backend)


def default_config() -> ExperimentConfig:
    """Return the configuration used by the paper's main evaluation."""
    return ExperimentConfig()
