"""Build and load the compiled kernel library.

The native tier is deliberately dependency-light: ``_kernels.c`` is plain
C99 with no Python.h, compiled once per host into a cached shared library
and loaded through :mod:`cffi`'s ABI mode (``ffi.dlopen``).  ABI-mode
calls release the GIL, which is the property the thread-sharded parallel
executor relies on.  The seam is intentionally small so a Numba or Cython
drop-in can replace this module without touching the wrappers in
:mod:`repro.sc.native`.

Everything here degrades gracefully: any failure (no compiler, no cffi,
big-endian host, ``REPRO_NATIVE=0``) raises :class:`NativeBuildError`
with a human-readable reason, which the package records and surfaces via
``native_error()`` -- callers then fall back to the NumPy kernels.

Environment knobs:

* ``REPRO_NATIVE=0`` (also ``off``/``false``) -- disable the tier.
* ``REPRO_NATIVE_CC`` -- compiler executable (default: ``cc``/``gcc``).
* ``REPRO_NATIVE_CACHE`` -- directory for the compiled library
  (default: ``~/.cache/repro-native``).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["NativeBuildError", "load"]

_SOURCE = Path(__file__).with_name("_kernels.c")

#: ABI declarations matching ``_kernels.c`` exactly.
CDEF = """
void repro_ones_count(
    const uint64_t *words, int64_t rows, int64_t n_words, int64_t *out);

void repro_fused_xnor_counts_u8(
    const uint64_t *a, const uint64_t *b, const uint64_t *extra,
    int64_t d0, int64_t d1, int64_t d2,
    int64_t as0, int64_t as1, int64_t as2,
    int64_t bs0, int64_t bs1, int64_t bs2,
    int64_t es0, int64_t es1, int64_t es2,
    int64_t m, int64_t n_extra,
    int64_t n_words, int64_t length, uint64_t tail,
    uint8_t *out);

void repro_fused_xnor_counts_u16(
    const uint64_t *a, const uint64_t *b, const uint64_t *extra,
    int64_t d0, int64_t d1, int64_t d2,
    int64_t as0, int64_t as1, int64_t as2,
    int64_t bs0, int64_t bs1, int64_t bs2,
    int64_t es0, int64_t es1, int64_t es2,
    int64_t m, int64_t n_extra,
    int64_t n_words, int64_t length, uint64_t tail,
    uint16_t *out);

void repro_fused_xnor_chain(
    const uint64_t *a, const uint64_t *b,
    int64_t d0, int64_t d1, int64_t d2,
    int64_t as0, int64_t as1, int64_t as2,
    int64_t bs0, int64_t bs1, int64_t bs2,
    int64_t k, int64_t n_words, int64_t length, uint64_t tail,
    uint64_t *out);

void repro_fe_recurrence_u8(
    const uint8_t *counts, int64_t rows, int64_t length,
    int64_t half, int64_t low, int64_t high,
    int64_t n_words, uint64_t *out);

void repro_fe_recurrence_u16(
    const uint16_t *counts, int64_t rows, int64_t length,
    int64_t half, int64_t low, int64_t high,
    int64_t n_words, uint64_t *out);

void repro_pack_comparator_f64(
    const double *draws, const double *thresholds,
    int64_t lead, int64_t rows, int64_t length, int64_t n_words,
    uint64_t *out);

void repro_pack_comparator_i64(
    const int64_t *draws, const int64_t *thresholds,
    int64_t lead, int64_t rows, int64_t length, int64_t n_words,
    uint64_t *out);
"""

_BASE_FLAGS = ("-O3", "-std=c99", "-fPIC", "-shared")


class NativeBuildError(RuntimeError):
    """The compiled kernel tier could not be built or loaded."""


def _disabled_by_env() -> bool:
    return os.environ.get("REPRO_NATIVE", "").strip().lower() in (
        "0",
        "off",
        "false",
        "no",
    )


def _compiler() -> str:
    cc = os.environ.get("REPRO_NATIVE_CC")
    if cc:
        return cc
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    raise NativeBuildError("no C compiler found (cc/gcc/clang not on PATH)")


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-native"


def _library_path(source: str, cc: str) -> Path:
    tag = hashlib.sha256(
        "\x00".join((source, cc, " ".join(_BASE_FLAGS))).encode()
    ).hexdigest()[:16]
    return _cache_dir() / f"repro_kernels_{tag}.so"


def _compile(cc: str, flags: tuple[str, ...], target: Path) -> None:
    """Compile the kernel source to ``target`` atomically."""
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        suffix=".so", prefix=target.stem + ".", dir=target.parent
    )
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *flags, str(_SOURCE), "-o", tmp_name],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            raise NativeBuildError(
                f"compiler failed (exit {proc.returncode}): "
                f"{proc.stderr.strip()[:500]}"
            )
        os.replace(tmp_name, target)
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)


def load():
    """Compile (if needed) and dlopen the kernel library.

    Returns:
        ``(ffi, lib)`` -- the cffi FFI object and the opened library.

    Raises:
        NativeBuildError: on any failure, with the reason; callers treat
            this as "tier unavailable" and fall back to NumPy.
    """
    if _disabled_by_env():
        raise NativeBuildError("disabled via REPRO_NATIVE environment variable")
    if sys.byteorder != "little":
        raise NativeBuildError(
            "native kernels assume a little-endian host (word layout)"
        )
    try:
        import cffi
    except ImportError as exc:
        raise NativeBuildError(f"cffi is not installed ({exc})") from exc

    try:
        source = _SOURCE.read_text()
    except OSError as exc:
        raise NativeBuildError(f"kernel source unreadable: {exc}") from exc

    cc = _compiler()
    target = _library_path(source, cc)
    if not target.exists():
        try:
            # -march=native unlocks hardware popcount/vector units; retry
            # without it for compilers/targets that reject the flag.
            _compile(cc, _BASE_FLAGS + ("-march=native",), target)
        except NativeBuildError:
            _compile(cc, _BASE_FLAGS, target)

    ffi = cffi.FFI()
    ffi.cdef(CDEF)
    try:
        lib = ffi.dlopen(str(target))
    except OSError as exc:
        raise NativeBuildError(f"dlopen failed: {exc}") from exc
    return ffi, lib
