/* Native kernels for the word-packed stochastic data plane.
 *
 * Compiled at first use into a small shared library (see _build.py) and
 * called through cffi's ABI mode, which releases the GIL around every
 * call -- that is what makes thread-sharded execution
 * (repro.backends.parallel, executor="thread") effective.
 *
 * Every kernel is bit-identical to its NumPy counterpart in
 * repro.sc.packed / repro.blocks.batched: same LSB-first word layout
 * (stream bit t in word t // 64 at position t % 64), same tail-mask
 * invariant (unused high bits of the final word stay zero), same IEEE
 * comparison semantics in the SNG comparator.
 *
 * Broadcast convention: the fused reduction kernels take up to three
 * leading ("row") dimensions with per-operand element strides, which is
 * exactly what the packed backend's conv (batch, positions, out_ch) and
 * dense (batch, out_ch) call sites need; the Python wrappers fall back
 * to NumPy for anything wider.
 */

#include <stdint.h>
#include <string.h>

#define ALL_ONES (~(uint64_t)0)

/* ---- popcount decode ---------------------------------------------------- */

/* Per-row total set bits: the hardware-popcount decode of ones_count(). */
void repro_ones_count(
    const uint64_t *words, int64_t rows, int64_t n_words, int64_t *out)
{
    for (int64_t r = 0; r < rows; r++) {
        const uint64_t *row = words + r * n_words;
        int64_t total = 0;
        for (int64_t w = 0; w < n_words; w++)
            total += __builtin_popcountll(row[w]);
        out[r] = total;
    }
}

/* ---- fused XNOR -> CSA column counts ------------------------------------ */

/* Carry-save full adder: l += a + b, carry out in h (5 word ops). */
#define CSA(h, l, a, b)                                                       \
    do {                                                                      \
        uint64_t _u = (a) ^ (b);                                              \
        (h) = ((a) & (b)) | (_u & (l));                                       \
        (l) ^= _u;                                                            \
    } while (0)

/* 8x8 bit-matrix transpose (Hacker's Delight 7-3): byte r bit c of the
 * input becomes byte c bit r of the output. */
static inline uint64_t transpose8(uint64_t x)
{
    uint64_t t;
    t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAULL;
    x = x ^ t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCULL;
    x = x ^ t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ULL;
    x = x ^ t ^ (t << 28);
    return x;
}

/* Product plane i of one word column: XNOR planes first (tail-masked),
 * then the extra columns, whose tail bits are already zero (contract). */
static inline uint64_t plane_word(
    const uint64_t *pa, const uint64_t *pb, const uint64_t *pe,
    int64_t m, int64_t stride, int64_t i, uint64_t mask)
{
    if (i < m)
        return ~(pa[i * stride] ^ pb[i * stride]) & mask;
    return pe[(i - m) * stride];
}

/* Accumulate every product plane of one word column into sixteen
 * binary-counter level words.  The low eight levels live in registers
 * and are fed by a Harley-Seal full-adder tree eight planes at a time
 * (~1 word op per plane per adder level, amortised); the weight-8 carry
 * of each tree ripples upward with early exit, spilling into the high
 * levels only for column sums beyond 255. */
static inline void count_column(
    const uint64_t *pa, const uint64_t *pb, const uint64_t *pe,
    int64_t m, int64_t total, int64_t stride, uint64_t mask,
    uint64_t *lv /* 16 level words out */)
{
    uint64_t ones = 0, twos = 0, fours = 0;
    uint64_t l3 = 0, l4 = 0, l5 = 0, l6 = 0, l7 = 0;
    uint64_t hi[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    uint64_t c, t;
    int64_t i = 0;
    for (; i + 8 <= total; i += 8) {
        uint64_t c0, c1, c2, c3, d0, d1, e0;
        CSA(c0, ones, plane_word(pa, pb, pe, m, stride, i + 0, mask),
                      plane_word(pa, pb, pe, m, stride, i + 1, mask));
        CSA(c1, ones, plane_word(pa, pb, pe, m, stride, i + 2, mask),
                      plane_word(pa, pb, pe, m, stride, i + 3, mask));
        CSA(c2, ones, plane_word(pa, pb, pe, m, stride, i + 4, mask),
                      plane_word(pa, pb, pe, m, stride, i + 5, mask));
        CSA(c3, ones, plane_word(pa, pb, pe, m, stride, i + 6, mask),
                      plane_word(pa, pb, pe, m, stride, i + 7, mask));
        CSA(d0, twos, c0, c1);
        CSA(d1, twos, c2, c3);
        CSA(e0, fours, d0, d1);
        c = e0;
        do {
            if (!c) break;
            t = l3 & c; l3 ^= c; c = t; if (!c) break;
            t = l4 & c; l4 ^= c; c = t; if (!c) break;
            t = l5 & c; l5 ^= c; c = t; if (!c) break;
            t = l6 & c; l6 ^= c; c = t; if (!c) break;
            t = l7 & c; l7 ^= c; c = t;
            for (int l = 0; c && l < 8; l++) {
                t = hi[l] & c; hi[l] ^= c; c = t;
            }
        } while (0);
    }
    for (; i < total; i++) {
        c = plane_word(pa, pb, pe, m, stride, i, mask);
        do {
            if (!c) break;
            t = ones & c; ones ^= c; c = t; if (!c) break;
            t = twos & c; twos ^= c; c = t; if (!c) break;
            t = fours & c; fours ^= c; c = t; if (!c) break;
            t = l3 & c; l3 ^= c; c = t; if (!c) break;
            t = l4 & c; l4 ^= c; c = t; if (!c) break;
            t = l5 & c; l5 ^= c; c = t; if (!c) break;
            t = l6 & c; l6 ^= c; c = t; if (!c) break;
            t = l7 & c; l7 ^= c; c = t;
            for (int l = 0; c && l < 8; l++) {
                t = hi[l] & c; hi[l] ^= c; c = t;
            }
        } while (0);
    }
    lv[0] = ones; lv[1] = twos; lv[2] = fours;
    lv[3] = l3; lv[4] = l4; lv[5] = l5; lv[6] = l6; lv[7] = l7;
    for (int l = 0; l < 8; l++)
        lv[8 + l] = hi[l];
}

/* Gather byte j of eight level words into one 8x8 bit matrix; after
 * transpose8, byte k is the (<= 8-bit) column count at t = 8j + k. */
static inline uint64_t decode_slice(const uint64_t *lv, int j)
{
    uint64_t x = 0;
    for (int l = 0; l < 8; l++)
        x |= ((lv[l] >> (8 * j)) & 0xFFULL) << (8 * l);
    return transpose8(x);
}

#define FUSED_COUNTS(NAME, OUT_T, HAS_HI)                                     \
void NAME(                                                                    \
    const uint64_t *a, const uint64_t *b, const uint64_t *extra,              \
    int64_t d0, int64_t d1, int64_t d2,                                       \
    int64_t as0, int64_t as1, int64_t as2,                                    \
    int64_t bs0, int64_t bs1, int64_t bs2,                                    \
    int64_t es0, int64_t es1, int64_t es2,                                    \
    int64_t m, int64_t n_extra,                                               \
    int64_t n_words, int64_t length, uint64_t tail,                           \
    OUT_T *out)                                                               \
{                                                                             \
    int64_t total = m + n_extra;                                              \
    int64_t row = 0;                                                          \
    for (int64_t i0 = 0; i0 < d0; i0++)                                       \
    for (int64_t i1 = 0; i1 < d1; i1++)                                       \
    for (int64_t i2 = 0; i2 < d2; i2++, row++) {                              \
        const uint64_t *ra = a + i0 * as0 + i1 * as1 + i2 * as2;              \
        const uint64_t *rb = b + i0 * bs0 + i1 * bs1 + i2 * bs2;              \
        const uint64_t *re =                                                  \
            extra ? extra + i0 * es0 + i1 * es1 + i2 * es2 : 0;               \
        OUT_T *cnt = out + row * length;                                      \
        for (int64_t w = 0; w < n_words; w++) {                               \
            uint64_t mask = (w == n_words - 1) ? tail : ALL_ONES;             \
            uint64_t lv[16];                                                  \
            count_column(ra + w, rb + w, re ? re + w : 0,                     \
                         m, total, n_words, mask, lv);                        \
            int64_t t0 = w * 64;                                              \
            int64_t tmax = length - t0;                                       \
            if (tmax > 64) tmax = 64;                                         \
            for (int j = 0; 8 * j < tmax; j++) {                              \
                uint64_t lo = decode_slice(lv, j);                            \
                int64_t nb = tmax - 8 * j;                                    \
                if (nb > 8) nb = 8;                                           \
                if (!HAS_HI && nb == 8) {                                     \
                    memcpy(cnt + t0 + 8 * j, &lo, 8);                         \
                } else {                                                      \
                    uint64_t hib = HAS_HI ? decode_slice(lv + 8, j) : 0;      \
                    for (int k = 0; k < nb; k++)                              \
                        cnt[t0 + 8 * j + k] = (OUT_T)(                        \
                            ((lo >> (8 * k)) & 0xFF) |                        \
                            (((hib >> (8 * k)) & 0xFF) << 8));                \
                }                                                             \
            }                                                                 \
        }                                                                     \
    }                                                                         \
}

FUSED_COUNTS(repro_fused_xnor_counts_u8, uint8_t, 0)
FUSED_COUNTS(repro_fused_xnor_counts_u16, uint16_t, 1)

/* ---- fused XNOR -> majority chain --------------------------------------- */

/* Majority chain over XNOR products, mirroring the hardware factorisation
 * of fused_xnor_majority_chain: acc = Maj(p0, p1, p2), one Maj gate per
 * further pair, trailing single input ANDed. */
void repro_fused_xnor_chain(
    const uint64_t *a, const uint64_t *b,
    int64_t d0, int64_t d1, int64_t d2,
    int64_t as0, int64_t as1, int64_t as2,
    int64_t bs0, int64_t bs1, int64_t bs2,
    int64_t k, int64_t n_words, int64_t length, uint64_t tail,
    uint64_t *out)
{
    (void)length;
    int64_t row = 0;
    for (int64_t i0 = 0; i0 < d0; i0++)
    for (int64_t i1 = 0; i1 < d1; i1++)
    for (int64_t i2 = 0; i2 < d2; i2++, row++) {
        const uint64_t *ra = a + i0 * as0 + i1 * as1 + i2 * as2;
        const uint64_t *rb = b + i0 * bs0 + i1 * bs1 + i2 * bs2;
        uint64_t *rout = out + row * n_words;
        for (int64_t w = 0; w < n_words; w++) {
            uint64_t mask = (w == n_words - 1) ? tail : ALL_ONES;
            #define PROD(i) (~(ra[(i) * n_words + w] ^ rb[(i) * n_words + w]) & mask)
            uint64_t acc;
            int64_t index;
            if (k == 1) {
                acc = PROD(0);
                index = 1;
            } else if (k == 2) {
                acc = PROD(0) & PROD(1);
                index = 2;
            } else {
                uint64_t p0 = PROD(0), p1 = PROD(1), p2 = PROD(2);
                acc = (p0 & (p1 | p2)) | (p1 & p2);
                index = 3;
            }
            while (index < k) {
                if (index + 1 < k) {
                    uint64_t f = PROD(index), s = PROD(index + 1);
                    acc = ((f | s) & acc) | (f & s);
                    index += 2;
                } else {
                    acc &= PROD(index);
                    index += 1;
                }
            }
            #undef PROD
            rout[w] = acc;
        }
    }
}

/* ---- feature-extraction stepper ----------------------------------------- */

/* The Algorithm 1 saturating-counter recurrence, one block instance per
 * row, emitting packed output words directly.  Covers every accumulator
 * state-space size (no all-states / per-cycle split) and every slab
 * width, which is what retires the wide-slab CONV fallback natively. */
#define FE_RECURRENCE(NAME, CNT_T)                                            \
void NAME(                                                                    \
    const CNT_T *counts, int64_t rows, int64_t length,                        \
    int64_t half, int64_t low, int64_t high,                                  \
    int64_t n_words, uint64_t *out)                                           \
{                                                                             \
    int64_t threshold = half + 1;                                             \
    for (int64_t r = 0; r < rows; r++) {                                      \
        const CNT_T *c = counts + r * length;                                 \
        uint64_t *w = out + r * n_words;                                      \
        int64_t acc = 0;                                                      \
        for (int64_t wi = 0; wi < n_words; wi++) {                            \
            uint64_t word = 0;                                                \
            int64_t t0 = wi * 64;                                             \
            int64_t tmax = length - t0;                                       \
            if (tmax > 64) tmax = 64;                                         \
            for (int64_t t = 0; t < tmax; t++) {                              \
                acc += c[t0 + t];                                             \
                uint64_t bit = acc >= threshold;                              \
                word |= bit << t;                                             \
                acc -= half + (int64_t)bit;                                   \
                if (acc < low) acc = low;                                     \
                if (acc > high) acc = high;                                   \
            }                                                                 \
            w[wi] = word;                                                     \
        }                                                                     \
    }                                                                         \
}

FE_RECURRENCE(repro_fe_recurrence_u8, uint8_t)
FE_RECURRENCE(repro_fe_recurrence_u16, uint16_t)

/* ---- word-direct SNG comparator ----------------------------------------- */

/* Comparator straight to packed words: bit t = [draw_t < threshold].
 * Draw rows are shared across the leading axis (the batch axis of the
 * input SNG); thresholds are per (lead, row). */
#define PACK_COMPARATOR(NAME, DRAW_T)                                         \
void NAME(                                                                    \
    const DRAW_T *draws, const DRAW_T *thresholds,                            \
    int64_t lead, int64_t rows, int64_t length, int64_t n_words,              \
    uint64_t *out)                                                            \
{                                                                             \
    for (int64_t l = 0; l < lead; l++) {                                      \
        for (int64_t r = 0; r < rows; r++) {                                  \
            DRAW_T thr = thresholds[l * rows + r];                            \
            const DRAW_T *d = draws + r * length;                             \
            uint64_t *w = out + (l * rows + r) * n_words;                     \
            for (int64_t wi = 0; wi < n_words; wi++) {                        \
                uint64_t word = 0;                                            \
                int64_t t0 = wi * 64;                                         \
                int64_t tmax = length - t0;                                   \
                if (tmax > 64) tmax = 64;                                     \
                for (int64_t t = 0; t < tmax; t++)                            \
                    word |= (uint64_t)(d[t0 + t] < thr) << t;                 \
                w[wi] = word;                                                 \
            }                                                                 \
        }                                                                     \
    }                                                                         \
}

PACK_COMPARATOR(repro_pack_comparator_f64, double)
PACK_COMPARATOR(repro_pack_comparator_i64, int64_t)
