"""Optional compiled kernel tier for the word-packed data plane.

This package is the *seam* between the NumPy reference kernels
(:mod:`repro.sc.packed`, :mod:`repro.blocks.batched`) and their compiled
counterparts.  The current implementation compiles ``_kernels.c`` with
the host C compiler and drives it through cffi's ABI mode (see
:mod:`repro.sc.native._build`); a Numba or Cython implementation can be
dropped in behind the same wrapper signatures without touching any
caller.

Design rules every wrapper follows:

* **Bit-identical or absent.**  A wrapper either produces exactly the
  words/counts its NumPy counterpart would, or returns ``None`` (shape
  or dtype outside the native fast path, tier unavailable) and the
  caller falls back.  No wrapper ever approximates.
* **GIL-free.**  cffi ABI calls release the GIL for the duration of the
  kernel, which is what makes thread-sharded execution
  (``executor="thread"`` in :mod:`repro.backends.parallel`) scale.
* **Allocation-free on the hot path.**  Scratch (CSA levels, output
  slabs) comes from the caller's :class:`~repro.workspace.Workspace`.

The tier loads lazily on first use; :func:`available` reports whether
the compiled library is usable and :func:`native_error` carries the
human-readable reason when it is not (no compiler, ``REPRO_NATIVE=0``,
missing cffi, ...).
"""

from __future__ import annotations

import logging
import math
import threading

import numpy as np

from repro.sc.native import _build
from repro.sc.packed import tail_mask, words_for_length

__all__ = [
    "available",
    "native_error",
    "describe",
    "fused_xnor_column_counts",
    "fused_xnor_majority_chain",
    "feature_extraction_recurrence_words",
    "pack_comparator_floats",
    "pack_comparator_words",
    "ones_count",
]

_MAX_LEAD_DIMS = 3
_MAX_COUNT = 65535  # uint16 ceiling of the CSA decode

_lock = threading.Lock()
_state: tuple | None = None  # (ffi, lib, error)


def _load() -> tuple:
    """Lazily build/load the library once per process (thread-safe)."""
    global _state
    if _state is None:
        with _lock:
            if _state is None:
                try:
                    ffi, lib = _build.load()
                    _state = (ffi, lib, None)
                except _build.NativeBuildError as exc:
                    _state = (None, None, str(exc))
                    logging.getLogger("repro.sc.native").warning(
                        "compiled kernel tier unavailable, falling back "
                        "to NumPy kernels: %s",
                        exc,
                        extra={
                            "obs_event": {
                                "kind": "native_fallback",
                                "error": str(exc),
                            }
                        },
                    )
    return _state


def _reset_state() -> None:
    """Forget the loaded library (test hook for fallback coverage)."""
    global _state
    with _lock:
        _state = None


def available() -> bool:
    """True when the compiled kernel tier is loaded and usable."""
    return _load()[1] is not None


def native_error() -> str | None:
    """Why the tier is unavailable (``None`` when it is available)."""
    return _load()[2]


def describe() -> str:
    """One-line availability note for registry listings."""
    if available():
        return "native tier: active"
    return f"native tier: unavailable ({native_error()})"


# -- pointer / layout helpers -------------------------------------------------


def _ws(workspace, key, shape, dtype):
    if workspace is not None:
        return workspace.array(key, shape, dtype)
    return np.empty(shape, dtype=dtype)


def _ptr(ffi, arr: np.ndarray, ctype: str):
    return ffi.cast(ctype, arr.ctypes.data)


def _lead_strides(arr: np.ndarray, lead: tuple[int, ...], n_words: int):
    """Broadcast ``arr`` to ``lead`` rows and extract element strides.

    The fused kernels walk up to three leading dimensions with
    per-operand strides while requiring the trailing ``(planes, words)``
    block to be laid out plane-major/word-contiguous.  Returns
    ``(dims, strides, base)`` with both padded to exactly three axes, or
    ``None`` when the layout is outside the native fast path.
    """
    if len(lead) > _MAX_LEAD_DIMS:
        return None
    bc = np.broadcast_to(arr, lead + arr.shape[-2:])
    strides = bc.strides
    if bc.shape[-1] > 1 and strides[-1] != 8:
        return None
    if bc.shape[-2] > 1 and strides[-2] != 8 * n_words:
        return None
    dims = [1] * (_MAX_LEAD_DIMS - len(lead)) + [int(d) for d in lead]
    lead_strides = [0] * (_MAX_LEAD_DIMS - len(lead)) + [
        int(s) for s in strides[: len(lead)]
    ]
    elem = []
    for s in lead_strides:
        if s % 8:
            return None
        elem.append(s // 8)
    return dims, elem, bc


def _uint64_operand(arr) -> np.ndarray | None:
    arr = np.asarray(arr)
    if arr.dtype != np.uint64 or arr.ndim < 2:
        return None
    return arr


# -- fused XNOR -> CSA column counts ------------------------------------------


def fused_xnor_column_counts(
    a,
    b,
    length: int,
    extra=None,
    out: np.ndarray | None = None,
    workspace=None,
    key="native-counts",
) -> np.ndarray | None:
    """Native drop-in for :func:`repro.sc.packed.fused_xnor_column_counts`.

    Returns the counts array (``out`` when given) or ``None`` when the
    operands fall outside the native fast path, in which case the caller
    must run the NumPy kernel instead.
    """
    ffi, lib, _ = _load()
    if lib is None:
        return None
    a = _uint64_operand(a)
    b = _uint64_operand(b)
    if a is None or b is None or a.shape[-2:] != b.shape[-2:]:
        return None
    m, n_words = int(a.shape[-2]), int(a.shape[-1])
    if m < 1 or length < 1 or n_words != words_for_length(length):
        return None
    try:
        lead = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    except ValueError:
        return None
    n_extra = 0
    extra_arr = None
    if extra is not None:
        extra_arr = _uint64_operand(extra)
        if extra_arr is None or extra_arr.shape[-1] != n_words:
            return None
        try:
            if np.broadcast_shapes(extra_arr.shape[:-2], lead) != lead:
                return None
        except ValueError:
            return None
        n_extra = int(extra_arr.shape[-2])
    m_total = m + n_extra
    if m_total > _MAX_COUNT:
        return None
    dtype = np.dtype(np.uint8 if m_total <= 255 else np.uint16)
    counts_shape = lead + (int(length),)
    if out is None:
        out = _ws(workspace, (key, "out"), counts_shape, dtype)
    elif (
        out.shape != counts_shape
        or out.dtype != dtype
        or not out.flags["C_CONTIGUOUS"]
    ):
        return None
    info_a = _lead_strides(a, lead, n_words)
    info_b = _lead_strides(b, lead, n_words)
    if info_a is None or info_b is None:
        return None
    if extra_arr is not None:
        info_e = _lead_strides(extra_arr, lead, n_words)
        if info_e is None:
            return None
        e_ptr = _ptr(ffi, info_e[2], "const uint64_t *")
        e_strides = info_e[1]
    else:
        e_ptr = ffi.NULL
        e_strides = [0, 0, 0]
    fn = (
        lib.repro_fused_xnor_counts_u8
        if dtype == np.uint8
        else lib.repro_fused_xnor_counts_u16
    )
    out_ctype = "uint8_t *" if dtype == np.uint8 else "uint16_t *"
    fn(
        _ptr(ffi, info_a[2], "const uint64_t *"),
        _ptr(ffi, info_b[2], "const uint64_t *"),
        e_ptr,
        *info_a[0],
        *info_a[1],
        *info_b[1],
        *e_strides,
        m,
        n_extra,
        n_words,
        int(length),
        int(tail_mask(length)),
        _ptr(ffi, out, out_ctype),
    )
    return out


# -- fused XNOR -> majority chain ---------------------------------------------


def fused_xnor_majority_chain(
    a,
    b,
    length: int,
    out: np.ndarray | None = None,
    workspace=None,
    key="native-chain",
) -> np.ndarray | None:
    """Native drop-in for :func:`repro.sc.packed.fused_xnor_majority_chain`.

    A non-contiguous ``out`` (e.g. a neuron-chunk slice of the output
    buffer) is handled by staging through a workspace slab.  Returns the
    result (``out`` when given) or ``None`` for a fallback.
    """
    ffi, lib, _ = _load()
    if lib is None:
        return None
    a = _uint64_operand(a)
    b = _uint64_operand(b)
    if a is None or b is None or a.shape[-2:] != b.shape[-2:]:
        return None
    k, n_words = int(a.shape[-2]), int(a.shape[-1])
    if k < 1 or length < 1 or n_words != words_for_length(length):
        return None
    try:
        lead = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    except ValueError:
        return None
    info_a = _lead_strides(a, lead, n_words)
    info_b = _lead_strides(b, lead, n_words)
    if info_a is None or info_b is None:
        return None
    out_shape = lead + (n_words,)
    if out is not None and (out.shape != out_shape or out.dtype != np.uint64):
        return None
    if out is not None and out.flags["C_CONTIGUOUS"]:
        target = out
    else:
        target = _ws(workspace, (key, "stage"), out_shape, np.uint64)
    lib.repro_fused_xnor_chain(
        _ptr(ffi, info_a[2], "const uint64_t *"),
        _ptr(ffi, info_b[2], "const uint64_t *"),
        *info_a[0],
        *info_a[1],
        *info_b[1],
        k,
        n_words,
        int(length),
        int(tail_mask(length)),
        _ptr(ffi, target, "uint64_t *"),
    )
    if out is not None and target is not out:
        out[...] = target
        return out
    return target


# -- feature-extraction stepper -----------------------------------------------


def feature_extraction_recurrence_words(
    counts,
    half: int,
    low: int,
    high: int,
    workspace=None,
    key="native-fe",
) -> np.ndarray | None:
    """Native word-blocked FE stepper over ``(..., length)`` column counts.

    Bit-identical to
    :func:`repro.blocks.batched.feature_extraction_recurrence_words` for
    every state-space size and slab width (the native loop has no
    all-states / per-cycle split, so the wide-slab CONV case runs at
    full speed too).  Returns workspace-backed packed words or ``None``
    for a fallback.
    """
    ffi, lib, _ = _load()
    if lib is None:
        return None
    counts = np.asarray(counts)
    if counts.dtype not in (np.uint8, np.uint16):
        return None
    if counts.ndim < 1 or not counts.flags["C_CONTIGUOUS"]:
        return None
    length = int(counts.shape[-1])
    if length < 1:
        return None
    rows = math.prod(counts.shape[:-1])
    n_words = words_for_length(length)
    out = _ws(
        workspace, (key, "words"), counts.shape[:-1] + (n_words,), np.uint64
    )
    fn = (
        lib.repro_fe_recurrence_u8
        if counts.dtype == np.uint8
        else lib.repro_fe_recurrence_u16
    )
    cnt_ctype = "const uint8_t *" if counts.dtype == np.uint8 else "const uint16_t *"
    fn(
        _ptr(ffi, counts, cnt_ctype),
        rows,
        length,
        int(half),
        int(low),
        int(high),
        n_words,
        _ptr(ffi, out, "uint64_t *"),
    )
    return out


# -- word-direct SNG comparator -----------------------------------------------


def pack_comparator_floats(
    draws: np.ndarray,
    thresholds: np.ndarray,
    out: np.ndarray,
    workspace=None,
    key="native-pack",
) -> np.ndarray | None:
    """Pack ``draws[r, t] < thresholds[..., r]`` straight into words.

    ``draws`` is one shared ``(rows, length)`` comparison-draw block and
    ``thresholds`` carries any leading batch axes over it -- exactly the
    shape contract of the mapper's chunked SNG
    (:meth:`repro.nn.sc_layers.ScNetworkMapper` stream generation).  A
    non-contiguous ``out`` (a chunk slice of the stream tensor) is staged
    through the workspace.  Returns ``out`` or ``None`` for a fallback.
    """
    ffi, lib, _ = _load()
    if lib is None:
        return None
    draws = np.asarray(draws)
    thresholds = np.asarray(thresholds)
    if draws.dtype != np.float64 or thresholds.dtype != np.float64:
        return None
    if draws.ndim != 2 or not draws.flags["C_CONTIGUOUS"]:
        return None
    rows, length = (int(d) for d in draws.shape)
    if length < 1 or thresholds.shape[-1:] != (rows,):
        return None
    n_words = words_for_length(length)
    out_shape = thresholds.shape + (n_words,)
    if out.shape != out_shape or out.dtype != np.uint64:
        return None
    lead = math.prod(thresholds.shape[:-1])
    thr = np.ascontiguousarray(thresholds).reshape(lead, rows)
    if out.flags["C_CONTIGUOUS"]:
        target = out
    else:
        target = _ws(workspace, (key, "stage"), out_shape, np.uint64)
    lib.repro_pack_comparator_f64(
        _ptr(ffi, draws, "const double *"),
        _ptr(ffi, thr, "const double *"),
        lead,
        rows,
        length,
        n_words,
        _ptr(ffi, target, "uint64_t *"),
    )
    if target is not out:
        out[...] = target
    return out


def pack_comparator_words(
    random_words,
    thresholds,
    out: np.ndarray | None = None,
) -> np.ndarray | None:
    """Native drop-in for :func:`repro.sc.packed.pack_comparator_words`.

    Handles the ``int64``/``float64`` same-dtype comparisons the SNG
    actually performs; anything else returns ``None`` for the NumPy
    fallback (whose ``np.less`` covers all dtype promotions).
    """
    ffi, lib, _ = _load()
    if lib is None:
        return None
    rw = np.asarray(random_words)
    th = np.asarray(thresholds)
    if rw.ndim < 1 or th.shape != rw.shape[:-1]:
        return None
    if rw.dtype == np.int64 and th.dtype == np.int64:
        fn = lib.repro_pack_comparator_i64
        ctype = "const int64_t *"
    elif rw.dtype == np.float64 and th.dtype == np.float64:
        fn = lib.repro_pack_comparator_f64
        ctype = "const double *"
    else:
        return None
    length = int(rw.shape[-1])
    if length < 1:
        return None
    n_words = words_for_length(length)
    values = math.prod(rw.shape[:-1])
    rw_c = np.ascontiguousarray(rw).reshape(values, length)
    th_c = np.ascontiguousarray(th).reshape(1, values)
    out_shape = rw.shape[:-1] + (n_words,)
    if out is None:
        out = np.empty(out_shape, dtype=np.uint64)
    elif (
        out.shape != out_shape
        or out.dtype != np.uint64
        or not out.flags["C_CONTIGUOUS"]
    ):
        return None
    # One shared-draw row per value: lead=1 collapses the kernel to a
    # per-row comparison with per-row draws.
    fn(
        _ptr(ffi, rw_c, ctype),
        _ptr(ffi, th_c, ctype),
        1,
        values,
        length,
        n_words,
        _ptr(ffi, out, "uint64_t *"),
    )
    return out


# -- popcount decode ----------------------------------------------------------


def ones_count(words) -> np.ndarray | None:
    """Hardware-popcount total of set bits along the word axis."""
    ffi, lib, _ = _load()
    if lib is None:
        return None
    words = np.asarray(words)
    if words.dtype != np.uint64 or words.ndim < 1:
        return None
    if not words.flags["C_CONTIGUOUS"]:
        return None
    n_words = int(words.shape[-1])
    rows = math.prod(words.shape[:-1])
    out = np.empty(words.shape[:-1], dtype=np.int64)
    lib.repro_ones_count(
        _ptr(ffi, words, "const uint64_t *"),
        rows,
        n_words,
        _ptr(ffi, out, "int64_t *"),
    )
    return out
