"""Value <-> probability conversions for unipolar and bipolar SC formats.

Stochastic computing represents a value by the probability of observing a
``1`` in the bit stream:

* **unipolar**: ``x in [0, 1]`` with ``P(bit = 1) = x``;
* **bipolar**:  ``x in [-1, 1]`` with ``P(bit = 1) = (x + 1) / 2``.

The paper uses bipolar encoding throughout because DNN weights and
activations are signed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError

__all__ = [
    "UNIPOLAR",
    "BIPOLAR",
    "unipolar_encode_probability",
    "unipolar_decode",
    "bipolar_encode_probability",
    "bipolar_decode",
    "validate_encoding",
]

#: Identifier for the unipolar encoding format.
UNIPOLAR = "unipolar"
#: Identifier for the bipolar encoding format.
BIPOLAR = "bipolar"

_VALID_ENCODINGS = (UNIPOLAR, BIPOLAR)


def validate_encoding(encoding: str) -> str:
    """Return ``encoding`` if valid, otherwise raise :class:`EncodingError`."""
    if encoding not in _VALID_ENCODINGS:
        raise EncodingError(
            f"unknown encoding {encoding!r}; expected one of {_VALID_ENCODINGS}"
        )
    return encoding


def unipolar_encode_probability(values: np.ndarray | float) -> np.ndarray:
    """Map unipolar values in ``[0, 1]`` to ``P(bit = 1)``."""
    values = np.asarray(values, dtype=np.float64)
    if np.any(values < -1e-9) or np.any(values > 1.0 + 1e-9):
        raise EncodingError("unipolar values must lie in [0, 1]")
    return np.clip(values, 0.0, 1.0)


def unipolar_decode(ones_fraction: np.ndarray | float) -> np.ndarray:
    """Map an observed fraction of ones back to a unipolar value."""
    return np.asarray(ones_fraction, dtype=np.float64)


def bipolar_encode_probability(values: np.ndarray | float) -> np.ndarray:
    """Map bipolar values in ``[-1, 1]`` to ``P(bit = 1) = (x + 1) / 2``."""
    values = np.asarray(values, dtype=np.float64)
    if np.any(values < -1.0 - 1e-9) or np.any(values > 1.0 + 1e-9):
        raise EncodingError("bipolar values must lie in [-1, 1]")
    return np.clip((values + 1.0) / 2.0, 0.0, 1.0)


def bipolar_decode(ones_fraction: np.ndarray | float) -> np.ndarray:
    """Map an observed fraction of ones back to a bipolar value."""
    ones_fraction = np.asarray(ones_fraction, dtype=np.float64)
    return 2.0 * ones_fraction - 1.0
