"""Parallel counters for the prior-work (CMOS) SC-DNN baseline.

The SC-DCNN feature-extraction block (paper Fig. 5) sums the XNOR product
streams with an *approximate parallel counter* (APC): an adder tree that
outputs, per clock cycle, (approximately) the number of ones across its
inputs as a binary value.  An accumulator and a binary-counter/FSM
activation then complete the inner product.  The deep-pipelining nature of
AQFP makes that accumulator impractical, which is precisely what motivates
the paper's sorter-based redesign -- but we still need the APC to reproduce
the CMOS baseline columns of Tables 5 and 9.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["exact_parallel_count", "approximate_parallel_counter", "apc_inner_product"]


def exact_parallel_count(bits: np.ndarray) -> np.ndarray:
    """Exact per-cycle population count over the input axis.

    Args:
        bits: array of shape ``(M, ..., N)``; the first axis is the inputs.

    Returns:
        int array of shape ``(..., N)`` with values in ``[0, M]``.
    """
    bits = np.asarray(bits)
    if bits.ndim < 2:
        raise ShapeError("exact_parallel_count expects shape (M, ..., N)")
    return bits.astype(np.int64).sum(axis=0)


def approximate_parallel_counter(bits: np.ndarray) -> np.ndarray:
    """Approximate parallel counter in the style of Kim et al. / SC-DCNN.

    The hardware APC replaces one of its half adders with an OR gate, which
    miscounts that pair only when both of its inputs are 1 (the OR yields 1
    instead of 2).  The model reproduces exactly that truncation: the last
    input pair is reduced with an OR instead of a full 2-bit sum, giving the
    documented sub-LSB negative bias relative to the exact count.

    Args:
        bits: array of shape ``(M, ..., N)``.

    Returns:
        int array of shape ``(..., N)`` approximating the population count.
    """
    bits = np.asarray(bits).astype(np.int64)
    if bits.ndim < 2:
        raise ShapeError("approximate_parallel_counter expects shape (M, ..., N)")
    m = bits.shape[0]
    if m == 1:
        return bits[0]
    # Pair inputs: every pair contributes its exact 2-bit sum except the last
    # pair, whose carry is approximated by an OR (the APC trick that saves a
    # half adder at the cost of <1 LSB error).
    counts = np.zeros(bits.shape[1:], dtype=np.int64)
    n_pairs = m // 2
    for pair_index in range(n_pairs):
        a = bits[2 * pair_index]
        b = bits[2 * pair_index + 1]
        if pair_index == n_pairs - 1 and m > 2:
            counts += np.maximum(a, b)  # approximated pair: OR drops a carry
        else:
            counts += a + b
    if m % 2 == 1:
        counts += bits[-1]
    return counts


def apc_inner_product(product_bits: np.ndarray) -> np.ndarray:
    """Binary inner-product estimate from APC outputs (per stream).

    Sums the per-cycle APC counts over the stream axis and converts back to
    the bipolar inner-product value ``sum_j a_j * w_j`` (no clipping): with
    ``M`` inputs and stream length ``N``, the decoded value is
    ``(2 * total_ones - M * N) / N``.
    """
    product_bits = np.asarray(product_bits)
    if product_bits.ndim < 2:
        raise ShapeError("apc_inner_product expects shape (M, ..., N)")
    m = product_bits.shape[0]
    n = product_bits.shape[-1]
    counts = approximate_parallel_counter(product_bits)
    total_ones = counts.sum(axis=-1)
    return (2.0 * total_ones - m * n) / n
