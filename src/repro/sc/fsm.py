"""Finite-state-machine activation (Btanh) used by the CMOS baseline.

SC-DCNN implements the activation function with a saturating up/down
counter (an FSM): the counter moves up for each input 1 and down for each
input 0, and the output bit is 1 while the counter sits in the upper half of
its range.  For a suitably chosen state count the decoded transfer function
approximates ``tanh``.  The paper argues this FSM cannot be built
efficiently in AQFP (state updates create RAW hazards across the deep
pipeline), which is why the proposed design integrates the activation into
the sorter feedback instead.  We keep a faithful model for the baseline
comparisons and the equivalence tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError

__all__ = ["BtanhFsm", "btanh_state_count"]


def btanh_state_count(fan_in: int, scale: float = 1.0) -> int:
    """Heuristic state count for a Btanh FSM following an adder of ``fan_in``.

    SC-DCNN sizes the counter proportionally to the number of summed inputs
    so the transfer function approximates ``tanh(scale * x)``.  The result is
    always an even number of at least 4 states.
    """
    if fan_in <= 0:
        raise ConfigurationError(f"fan_in must be positive, got {fan_in}")
    states = int(round(2 * max(1.0, scale) * fan_in))
    states = max(4, states)
    return states + (states % 2)


class BtanhFsm:
    """Saturating up/down counter implementing the stochastic tanh.

    Args:
        n_states: even number of counter states.
        initial_state: starting state; defaults to the middle of the range.
    """

    def __init__(self, n_states: int, initial_state: int | None = None) -> None:
        if n_states < 2 or n_states % 2 != 0:
            raise ConfigurationError(
                f"n_states must be an even integer >= 2, got {n_states}"
            )
        self._n_states = int(n_states)
        if initial_state is None:
            initial_state = n_states // 2 - 1
        if not 0 <= initial_state < n_states:
            raise ConfigurationError(
                f"initial_state must be in [0, {n_states}), got {initial_state}"
            )
        self._initial_state = int(initial_state)

    @property
    def n_states(self) -> int:
        """Number of counter states."""
        return self._n_states

    def transform(self, bits: np.ndarray) -> np.ndarray:
        """Run the FSM over the stream axis of ``bits``.

        Args:
            bits: 0/1 array of shape ``(..., N)``; each leading index gets an
                independent FSM instance.

        Returns:
            0/1 array of the same shape: the activated stream.
        """
        bits = np.asarray(bits)
        if bits.ndim == 0:
            raise ShapeError("transform expects at least a stream axis")
        flat = bits.reshape(-1, bits.shape[-1]).astype(np.int64)
        state = np.full(flat.shape[0], self._initial_state, dtype=np.int64)
        half = self._n_states // 2
        out = np.empty_like(flat)
        for t in range(flat.shape[-1]):
            step = 2 * flat[:, t] - 1
            state = np.clip(state + step, 0, self._n_states - 1)
            out[:, t] = (state >= half).astype(np.int64)
        return out.reshape(bits.shape).astype(np.uint8)

    def transfer_curve(
        self, values: np.ndarray, length: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Decoded output value for each bipolar input value (for plotting)."""
        values = np.asarray(values, dtype=np.float64)
        p = (values + 1.0) / 2.0
        bits = (rng.random(values.shape + (length,)) < p[..., None]).astype(np.uint8)
        activated = self.transform(bits)
        return 2.0 * activated.mean(axis=-1) - 1.0
