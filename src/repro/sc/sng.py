"""Stochastic number generators (binary-to-stochastic conversion).

An SNG converts an ``n``-bit binary magnitude into a stochastic bit stream
by comparing it against a fresh ``n``-bit random word every clock cycle: the
output bit is 1 when the random word is below the magnitude.  The quality of
the stream is therefore set entirely by the random word source, which is why
the AQFP true-RNG matrix matters so much in the paper.

:class:`StochasticNumberGenerator` is source-agnostic: pass an AQFP TRNG, an
LFSR, or words drawn from an :class:`~repro.rng.matrix.RngMatrix`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError, ShapeError
from repro.rng.base import RandomWordSource
from repro.sc.bitstream import Bitstream
from repro.sc.encoding import (
    BIPOLAR,
    UNIPOLAR,
    bipolar_encode_probability,
    unipolar_encode_probability,
    validate_encoding,
)

__all__ = ["StochasticNumberGenerator", "quantize_to_levels"]


def quantize_to_levels(values: np.ndarray | float, n_bits: int, encoding: str) -> np.ndarray:
    """Quantize real values to the ``2**n_bits`` comparator levels of an SNG.

    The hardware stores weights as ``n_bits``-wide binary magnitudes; this
    returns the integer threshold fed to the comparator for each value.
    """
    validate_encoding(encoding)
    if n_bits <= 0 or n_bits > 31:
        raise EncodingError(f"n_bits must be in [1, 31], got {n_bits}")
    levels = 1 << n_bits
    if encoding == BIPOLAR:
        p = bipolar_encode_probability(values)
    else:
        p = unipolar_encode_probability(values)
    return np.clip(np.rint(p * levels), 0, levels).astype(np.int64)


class StochasticNumberGenerator:
    """Comparator-based SNG driven by an arbitrary random word source.

    Args:
        source: random word source; its :attr:`n_bits` sets comparator width.
        encoding: stream encoding produced by :meth:`generate`.
    """

    def __init__(self, source: RandomWordSource, encoding: str = BIPOLAR) -> None:
        self._source = source
        self._encoding = validate_encoding(encoding)

    @property
    def source(self) -> RandomWordSource:
        """The underlying random word source."""
        return self._source

    @property
    def n_bits(self) -> int:
        """Comparator / binary magnitude width."""
        return self._source.n_bits

    @property
    def encoding(self) -> str:
        """Encoding of generated streams."""
        return self._encoding

    def thresholds(self, values: np.ndarray | float) -> np.ndarray:
        """Comparator thresholds corresponding to ``values``."""
        return quantize_to_levels(values, self.n_bits, self._encoding)

    def generate(self, values: np.ndarray | float, length: int) -> Bitstream:
        """Convert real values to stochastic streams of the given length.

        Each value gets an independent sequence of random words; the output
        bit for cycle ``t`` is ``1`` when ``random_word[t] < threshold``.
        """
        if length <= 0:
            raise ShapeError(f"stream length must be positive, got {length}")
        thresholds = self.thresholds(values)
        words = self._source.words(thresholds.shape + (length,))
        bits = (words < thresholds[..., None]).astype(np.uint8)
        return Bitstream(bits, self._encoding)

    def generate_packed(
        self,
        values: np.ndarray | float,
        length: int,
        cycle_chunk: int = 8192,
    ):
        """Word-direct stream generation: comparator straight to packed words.

        Bit-identical to ``self.generate(values, length).packed()`` --
        asserted by the unit tests -- but the full-stream byte-per-bit
        tensor (and, more importantly, the full-stream tensor of random
        comparison words, eight bytes per cycle) is never materialised:
        random words are drawn from the source in bounded chunks and each
        chunk is compared and packed immediately
        (:func:`repro.sc.packed.pack_comparator_words`), so the live
        footprint is one chunk plus the packed output (1/64th of the
        legacy word tensor).

        Exactness relies on the source producing one continuous word
        sequence across consecutive :meth:`~repro.rng.base.RandomWordSource.words`
        calls, which holds for every stateful source in :mod:`repro.rng`
        (the LFSR advances its register, the TRNG its bit stream).

        Args:
            values: real values to encode.
            length: stream length ``N``.
            cycle_chunk: target number of comparison draws live at once
                (must be at least 64; the last chunk of a stream may be
                shorter).

        Returns:
            A :class:`~repro.sc.packed.PackedBitstream` of shape
            ``np.shape(values) + (ceil(N / 64),)`` words.
        """
        from repro.sc.packed import (
            WORD_BITS,
            PackedBitstream,
            pack_comparator_words,
            words_for_length,
        )

        if length <= 0:
            raise ShapeError(f"stream length must be positive, got {length}")
        if cycle_chunk < WORD_BITS:
            raise ShapeError(
                f"cycle_chunk must be >= {WORD_BITS}, got {cycle_chunk}"
            )
        thresholds = self.thresholds(values)
        flat = thresholds.reshape(-1)
        n_values = flat.size
        n_words = words_for_length(length)
        out = np.empty((n_values, n_words), dtype=np.uint64)
        if length <= cycle_chunk:
            # Whole streams per chunk: group as many values as fit.
            per_chunk = max(1, cycle_chunk // length)
            for start in range(0, n_values, per_chunk):
                stop = min(n_values, start + per_chunk)
                draws = self._source.words((stop - start, length))
                pack_comparator_words(draws, flat[start:stop], out=out[start:stop])
        else:
            # Streams longer than a chunk: split each stream at word
            # boundaries so every chunk packs into whole output words.
            step = (cycle_chunk // WORD_BITS) * WORD_BITS
            for v in range(n_values):
                for first in range(0, length, step):
                    last = min(length, first + step)
                    draws = self._source.words(last - first)
                    word0 = first // WORD_BITS
                    pack_comparator_words(
                        draws,
                        flat[v],
                        out=out[v, word0 : word0 + words_for_length(last - first)],
                    )
        return PackedBitstream._trusted(
            out.reshape(thresholds.shape + (n_words,)), int(length), self._encoding
        )

    def generate_from_shared_words(
        self, values: np.ndarray | float, words: np.ndarray
    ) -> Bitstream:
        """Convert values using externally supplied random words.

        This is how the RNG-matrix sharing scheme is exercised: the caller
        draws ``(n_values, length)`` words from the matrix and several SNGs
        reuse (different slices of) them.
        """
        thresholds = self.thresholds(values)
        words = np.asarray(words)
        if words.shape[:-1] != thresholds.shape:
            raise ShapeError(
                "words shape "
                f"{words.shape} incompatible with values shape {thresholds.shape}"
            )
        bits = (words < thresholds[..., None]).astype(np.uint8)
        return Bitstream(bits, self._encoding)

    def expected_value(self, values: np.ndarray | float) -> np.ndarray:
        """Exact decoded value of an infinitely long generated stream.

        Quantisation by the ``n_bits`` comparator is the only deviation from
        the requested value, so this is the quantised value.
        """
        thresholds = self.thresholds(values).astype(np.float64)
        p = thresholds / (1 << self.n_bits)
        if self._encoding == BIPOLAR:
            return 2.0 * p - 1.0
        return p
