"""Word-packed stochastic bit streams (64 stream bits per ``uint64`` word).

The byte-per-bit :class:`~repro.sc.bitstream.Bitstream` representation is
convenient but wasteful: every SC gate evaluation touches one byte per
stream bit.  This module packs streams 64 bits per ``uint64`` word so that
one CPU word operation evaluates 64 SC gates at once, which is what makes
long-stream (``N >= 8192``) sweeps and whole-network bit-exact inference
tractable in pure NumPy.

Bit layout convention
---------------------
Stream bit ``t`` lives in word ``t // 64`` at bit position ``t % 64``
(LSB-first, i.e. ``np.packbits(..., bitorder="little")`` byte order viewed
as little-endian ``uint64`` words).  The final ("tail") word of a stream
whose length is not a multiple of 64 keeps its unused high bits at **zero**;
every kernel that could set tail bits (e.g. the XNOR's negation) re-applies
the tail mask so the invariant holds everywhere.  Decoding therefore is a
plain popcount over the words.

All kernels operate on raw word arrays whose **last axis** is the word
axis; :class:`PackedBitstream` is the user-facing container mirroring
:class:`~repro.sc.bitstream.Bitstream` (leading axes carry value structure).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.errors import ShapeError
from repro.sc.encoding import (
    BIPOLAR,
    bipolar_decode,
    unipolar_decode,
    validate_encoding,
)

__all__ = [
    "WORD_BITS",
    "PackedBitstream",
    "pack_bits",
    "unpack_bits",
    "words_for_length",
    "tail_mask",
    "popcount_words",
    "ones_count",
    "prefix_ones_counts",
    "packed_xnor",
    "packed_and",
    "packed_or",
    "packed_mux",
    "packed_mux_add",
    "majority3_words",
    "majority_chain_words",
    "packed_column_counts",
]

#: Stream bits stored per packed word.
WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def words_for_length(length: int) -> int:
    """Number of ``uint64`` words needed to hold ``length`` stream bits."""
    if length <= 0:
        raise ShapeError(f"stream length must be positive, got {length}")
    return (int(length) + WORD_BITS - 1) // WORD_BITS


def tail_mask(length: int) -> np.uint64:
    """Mask of the valid bits in the final word of a ``length``-bit stream."""
    rem = int(length) % WORD_BITS
    if rem == 0:
        return _ALL_ONES
    return np.uint64((1 << rem) - 1)


def _apply_tail_mask(words: np.ndarray, length: int) -> np.ndarray:
    """Zero the unused high bits of the tail word, in place."""
    mask = tail_mask(length)
    if mask != _ALL_ONES:
        words[..., -1] &= mask
    return words


def _native_words(words: np.ndarray) -> np.ndarray:
    """Contiguous uint64 array in the packed (little-endian) byte order."""
    arr = np.ascontiguousarray(words, dtype=np.uint64)
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI hosts
        arr = arr.byteswap()
    return arr


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 array of shape ``(..., N)`` into ``(..., ceil(N/64))`` words.

    Stream bit ``t`` of the input maps to bit ``t % 64`` of word ``t // 64``;
    tail bits beyond ``N`` are zero.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    if bits.ndim == 0:
        raise ShapeError("a bit stream needs at least one (stream) axis")
    length = bits.shape[-1]
    n_words = words_for_length(length)
    pad = n_words * WORD_BITS - length
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1
        )
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    words = np.ascontiguousarray(packed_bytes).view(np.uint64)
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI hosts
        words = words.byteswap()
    return words


def unpack_bits(words: np.ndarray, length: int) -> np.ndarray:
    """Unpack ``(..., W)`` words back into a ``(..., length)`` 0/1 array."""
    if length <= 0:
        raise ShapeError(f"stream length must be positive, got {length}")
    arr = _native_words(words)
    if arr.ndim == 0 or arr.shape[-1] != words_for_length(length):
        raise ShapeError(
            f"word array of shape {np.shape(words)} cannot hold a "
            f"{length}-bit stream"
        )
    as_bytes = arr.view(np.uint8)
    return np.unpackbits(as_bytes, axis=-1, bitorder="little", count=int(length))


if hasattr(np, "bitwise_count"):

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-word population count (number of set bits)."""
        return np.bitwise_count(words)

else:  # pragma: no cover - NumPy < 2.0 fallback
    _POPCOUNT_LUT = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-word population count (number of set bits)."""
        arr = np.ascontiguousarray(words, dtype=np.uint64)
        counts = _POPCOUNT_LUT[arr.view(np.uint8)]
        return counts.reshape(arr.shape + (8,)).sum(axis=-1, dtype=np.uint64)


def ones_count(words: np.ndarray) -> np.ndarray:
    """Total set bits along the word axis (the popcount-based decode core)."""
    return popcount_words(words).sum(axis=-1, dtype=np.int64)


def prefix_ones_counts(
    words: np.ndarray, checkpoints, length: int
) -> np.ndarray:
    """Set-bit counts of stream *prefixes*: ``(..., W)`` -> ``(K, ...)``.

    ``checkpoints`` is a sequence of ``K`` prefix lengths; entry ``k`` of
    the result counts the ones among stream bits ``t < checkpoints[k]``.
    Because bit ``t`` lives in word ``t // 64`` at position ``t % 64``, a
    prefix count is one cumulative-popcount lookup plus (for checkpoints
    off a word boundary) a single masked popcount of the straddled word --
    the word layout makes partial-stream decoding nearly free, which is
    what the progressive-precision early exit of :mod:`repro.serve` is
    built on.

    Args:
        words: packed streams of shape ``(..., W)``.
        checkpoints: prefix lengths, each in ``[1, length]``.
        length: stream length ``N`` (``W == ceil(N / 64)``).

    Returns:
        ``int64`` array of shape ``(K, ...)`` of prefix ones counts.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim == 0 or words.shape[-1] != words_for_length(length):
        raise ShapeError(
            f"word array of shape {np.shape(words)} cannot hold a "
            f"{length}-bit stream"
        )
    checkpoints = [int(p) for p in checkpoints]
    for p in checkpoints:
        if not 1 <= p <= length:
            raise ShapeError(
                f"checkpoint {p} outside the stream length [1, {length}]"
            )
    # One cumulative popcount pass serves every checkpoint.
    cumulative = np.cumsum(popcount_words(words), axis=-1, dtype=np.int64)
    out = np.empty((len(checkpoints),) + words.shape[:-1], dtype=np.int64)
    for k, p in enumerate(checkpoints):
        full_words, rem = divmod(p, WORD_BITS)
        if full_words:
            total = cumulative[..., full_words - 1].copy()
        else:
            total = np.zeros(words.shape[:-1], dtype=np.int64)
        if rem:
            mask = np.uint64((1 << rem) - 1)
            total += popcount_words(words[..., full_words] & mask).astype(
                np.int64
            )
        out[k] = total
    return out


# -- word-parallel SC gate kernels ------------------------------------------


def _check_same_shape(a, b) -> None:
    if np.shape(a) != np.shape(b):
        raise ShapeError(
            f"operand shapes differ: {np.shape(a)} vs {np.shape(b)}"
        )


def packed_xnor(a: np.ndarray, b: np.ndarray, length: int) -> np.ndarray:
    """Word-parallel XNOR (bipolar SC multiply): 64 gates per word op."""
    _check_same_shape(a, b)
    out = np.bitwise_xor(a, b)
    np.bitwise_not(out, out=out)
    return _apply_tail_mask(out, length)


def packed_and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Word-parallel AND (unipolar SC multiply).  Tail bits stay zero."""
    _check_same_shape(a, b)
    return np.bitwise_and(a, b)


def packed_or(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Word-parallel OR (sorter MAX).  Tail bits stay zero."""
    _check_same_shape(a, b)
    return np.bitwise_or(a, b)


def packed_mux(a: np.ndarray, b: np.ndarray, select: np.ndarray) -> np.ndarray:
    """Word-parallel 2:1 multiplexer: ``b`` where ``select`` bit set, else ``a``."""
    _check_same_shape(a, b)
    select = np.asarray(select).astype(np.uint64, copy=False)
    return (a & ~select) | (b & select)


def packed_mux_add(
    words: np.ndarray, select: np.ndarray, length: int
) -> np.ndarray:
    """N-input multiplexer addition on packed operands.

    Args:
        words: packed streams of shape ``(n_inputs, ..., W)``.
        select: integer select values of shape ``(..., N)`` or ``(N,)`` in
            ``[0, n_inputs)`` (the *unpacked* per-cycle select sequence, as
            produced by a hardware select counter / RNG).
        length: stream length ``N``.

    Returns:
        Packed words of shape ``(..., W)``.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim < 2:
        raise ShapeError("packed_mux_add expects shape (n_inputs, ..., W)")
    n_inputs = words.shape[0]
    select = np.asarray(select)
    value_shape = words.shape[1:-1]
    if select.shape != value_shape + (length,) and select.shape != (length,):
        raise ShapeError(
            f"select shape {select.shape} incompatible with packed streams "
            f"{words.shape} of length {length}"
        )
    if np.any(select < 0) or np.any(select >= n_inputs):
        raise ShapeError(f"select values must lie in [0, {n_inputs})")
    select = np.broadcast_to(select, value_shape + (length,))
    out = np.zeros(words.shape[1:], dtype=np.uint64)
    for index in range(n_inputs):
        mask = pack_bits((select == index).astype(np.uint8))
        out |= words[index] & mask
    return out


def _csa_words(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Word-parallel full adder (carry-save 3:2 compressor).

    Treats the three operands as equal-weight bit planes and returns the
    ``(sum, carry)`` planes: ``sum`` keeps the operands' weight, ``carry``
    has twice that weight.  64 full adders evaluate per word operation.
    """
    partial = a ^ b
    return partial ^ c, (a & b) | (partial & c)


def packed_column_counts(words: np.ndarray, length: int) -> np.ndarray:
    """Per-cycle ones counts across packed streams: ``(..., M, W) -> (..., N)``.

    Computes, for each stream bit position ``t``, how many of the ``M``
    packed streams carry a one at ``t`` -- the "column count" every sorter
    block recurrence consumes -- without ever unpacking the operand
    streams.  The ``M`` bit planes are reduced with a carry-save adder
    tree (:func:`_csa_words`; ``O(M)`` word operations in total), leaving
    one packed plane per count bit; only those ``ceil(log2(M + 1))``
    planes are unpacked and recombined, so the memory traffic is
    logarithmic in ``M`` instead of linear.

    Args:
        words: packed streams of shape ``(..., M, W)``.
        length: stream length ``N``.

    Returns:
        Integer array of shape ``(..., N)`` with entries in ``[0, M]``
        (``uint8`` when ``M <= 255``, ``uint16`` otherwise).
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim < 2:
        raise ShapeError("packed_column_counts expects shape (..., M, W)")
    m = words.shape[-2]
    if m < 1:
        raise ShapeError("packed_column_counts needs at least one stream")
    # levels[j] holds the not-yet-reduced planes of weight 2**j.
    levels: list[list[np.ndarray]] = [[words[..., i, :] for i in range(m)]]
    j = 0
    while j < len(levels):
        planes = levels[j]
        while len(planes) >= 3:
            total, carry = _csa_words(planes.pop(), planes.pop(), planes.pop())
            planes.append(total)
            if j + 1 == len(levels):
                levels.append([])
            levels[j + 1].append(carry)
        if len(planes) == 2:  # half adder finishes the level
            a, b = planes.pop(), planes.pop()
            planes.append(a ^ b)
            if j + 1 == len(levels):
                levels.append([])
            levels[j + 1].append(a & b)
        j += 1
    dtype = np.uint8 if m <= 255 else np.uint16
    counts = np.zeros(words.shape[:-2] + (int(length),), dtype=dtype)
    for exponent, planes in enumerate(levels):
        if not planes:
            continue
        (plane,) = planes
        bits = unpack_bits(plane, length)
        if exponent:
            counts += bits.astype(dtype) << exponent
        else:
            counts += bits
    return counts


def majority3_words(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Word-parallel 3-input majority: ``(a&b) | (a&c) | (b&c)``."""
    return (a & b) | (a & c) | (b & c)


def majority_chain_words(words: np.ndarray) -> np.ndarray:
    """Word-parallel majority chain over packed product streams.

    Mirrors the hardware chain factorisation of
    :class:`~repro.blocks.categorization.MajorityChainCategorizationBlock`
    bit-for-bit: ``a_0 = Maj(b_1, b_2, b_3)``, then one gate per further
    input pair, with a single trailing input paired with constant 0 (so the
    last gate degenerates to an AND).

    Args:
        words: packed streams of shape ``(..., K, W)``.

    Returns:
        Packed words of shape ``(..., W)``.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim < 2:
        raise ShapeError("majority_chain_words expects shape (..., K, W)")
    k = words.shape[-2]
    if k == 1:
        return words[..., 0, :].copy()
    if k == 2:
        return words[..., 0, :] & words[..., 1, :]
    acc = majority3_words(words[..., 0, :], words[..., 1, :], words[..., 2, :])
    index = 3
    while index < k:
        if index + 1 < k:
            acc = majority3_words(
                acc, words[..., index, :], words[..., index + 1, :]
            )
            index += 2
        else:
            acc = acc & words[..., index, :]
            index += 1
    return acc


# -- container ---------------------------------------------------------------


class PackedBitstream:
    """A (possibly multi-dimensional) word-packed stochastic bit stream.

    Mirrors :class:`~repro.sc.bitstream.Bitstream` with the stream axis
    stored 64 bits per ``uint64`` word (see the module docstring for the
    exact layout).  Use :meth:`from_bits` /
    :meth:`~repro.sc.bitstream.Bitstream.packed` to pack and :meth:`unpack`
    / :meth:`~repro.sc.bitstream.Bitstream.from_packed` to go back.

    Args:
        words: ``uint64`` array of shape ``(..., ceil(length / 64))``.
        length: stream length ``N`` in bits.
        encoding: ``"bipolar"`` (default) or ``"unipolar"``.
    """

    __slots__ = ("_words", "_length", "_encoding")

    def __init__(
        self, words: np.ndarray, length: int, encoding: str = BIPOLAR
    ) -> None:
        arr = np.array(words, dtype=np.uint64, copy=True)
        if arr.ndim == 0:
            raise ShapeError("a packed stream needs at least one (word) axis")
        if length <= 0:
            raise ShapeError(f"stream length must be positive, got {length}")
        if arr.shape[-1] != words_for_length(length):
            raise ShapeError(
                f"word array of shape {arr.shape} cannot hold a "
                f"{length}-bit stream"
            )
        self._words = _apply_tail_mask(arr, length)
        self._length = int(length)
        self._encoding = validate_encoding(encoding)

    @classmethod
    def _trusted(
        cls, words: np.ndarray, length: int, encoding: str
    ) -> "PackedBitstream":
        """Wrap kernel output without copying or re-masking.

        The caller guarantees ``words`` is a fresh ``uint64`` array with the
        correct word count and a clean (zeroed) tail, and that ``encoding``
        is already validated.
        """
        obj = cls.__new__(cls)
        obj._words = words
        obj._length = length
        obj._encoding = encoding
        return obj

    @classmethod
    def from_bits(
        cls, bits: np.ndarray, encoding: str = BIPOLAR
    ) -> "PackedBitstream":
        """Pack a 0/1 array whose last axis is the stream axis."""
        from repro.sc.bitstream import _validate_bits

        bits = np.asarray(bits)
        if bits.ndim == 0:
            raise ShapeError("a bit stream needs at least one (stream) axis")
        _validate_bits(bits)
        return cls._trusted(
            pack_bits(bits), int(bits.shape[-1]), validate_encoding(encoding)
        )

    # -- basic properties --------------------------------------------------

    @property
    def words(self) -> np.ndarray:
        """The underlying ``uint64`` word array (last axis = word axis)."""
        return self._words

    @property
    def encoding(self) -> str:
        """Encoding format of this stream."""
        return self._encoding

    @property
    def length(self) -> int:
        """Stream length ``N`` in bits."""
        return self._length

    @property
    def n_words(self) -> int:
        """Words per stream (``ceil(length / 64)``)."""
        return int(self._words.shape[-1])

    @property
    def value_shape(self) -> tuple[int, ...]:
        """Shape of the encoded value tensor (all axes except the words)."""
        return tuple(self._words.shape[:-1])

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedBitstream(value_shape={self.value_shape}, "
            f"length={self._length}, encoding={self._encoding!r})"
        )

    # -- decoding ----------------------------------------------------------

    def unpack(self) -> np.ndarray:
        """The stream as a plain ``uint8`` 0/1 array of shape ``(..., N)``."""
        return unpack_bits(self._words, self._length)

    def to_bitstream(self):
        """Convert back to a byte-per-bit :class:`Bitstream`."""
        from repro.sc.bitstream import Bitstream

        return Bitstream._trusted(self.unpack(), self._encoding)

    def ones_count(self) -> np.ndarray:
        """Number of set bits along the stream axis (popcount decode)."""
        return ones_count(self._words)

    def ones_fraction(self) -> np.ndarray:
        """Fraction of ones along the stream axis."""
        return self.ones_count() / float(self._length)

    def to_values(self) -> np.ndarray:
        """Decode the stream back to real values according to its encoding."""
        fraction = self.ones_fraction()
        if self._encoding == BIPOLAR:
            return bipolar_decode(fraction)
        return unipolar_decode(fraction)
