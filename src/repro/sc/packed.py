"""Word-packed stochastic bit streams (64 stream bits per ``uint64`` word).

The byte-per-bit :class:`~repro.sc.bitstream.Bitstream` representation is
convenient but wasteful: every SC gate evaluation touches one byte per
stream bit.  This module packs streams 64 bits per ``uint64`` word so that
one CPU word operation evaluates 64 SC gates at once, which is what makes
long-stream (``N >= 8192``) sweeps and whole-network bit-exact inference
tractable in pure NumPy.

Bit layout convention
---------------------
Stream bit ``t`` lives in word ``t // 64`` at bit position ``t % 64``
(LSB-first, i.e. ``np.packbits(..., bitorder="little")`` byte order viewed
as little-endian ``uint64`` words).  The final ("tail") word of a stream
whose length is not a multiple of 64 keeps its unused high bits at **zero**;
every kernel that could set tail bits (e.g. the XNOR's negation) re-applies
the tail mask so the invariant holds everywhere.  Decoding therefore is a
plain popcount over the words.

All kernels operate on raw word arrays whose **last axis** is the word
axis; :class:`PackedBitstream` is the user-facing container mirroring
:class:`~repro.sc.bitstream.Bitstream` (leading axes carry value structure).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.errors import ShapeError
from repro.workspace import Workspace
from repro.sc.encoding import (
    BIPOLAR,
    bipolar_decode,
    unipolar_decode,
    validate_encoding,
)

__all__ = [
    "WORD_BITS",
    "PackedBitstream",
    "pack_bits",
    "unpack_bits",
    "unpack_bits_into",
    "words_for_length",
    "tail_mask",
    "popcount_words",
    "ones_count",
    "prefix_ones_counts",
    "pack_comparator_words",
    "packed_xnor",
    "packed_and",
    "packed_or",
    "packed_mux",
    "packed_mux_add",
    "majority3_words",
    "majority_chain_words",
    "packed_column_counts",
    "fused_xnor_column_counts",
    "fused_xnor_majority_chain",
]

#: Stream bits stored per packed word.
WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def words_for_length(length: int) -> int:
    """Number of ``uint64`` words needed to hold ``length`` stream bits."""
    if length <= 0:
        raise ShapeError(f"stream length must be positive, got {length}")
    return (int(length) + WORD_BITS - 1) // WORD_BITS


def tail_mask(length: int) -> np.uint64:
    """Mask of the valid bits in the final word of a ``length``-bit stream."""
    rem = int(length) % WORD_BITS
    if rem == 0:
        return _ALL_ONES
    return np.uint64((1 << rem) - 1)


def _apply_tail_mask(words: np.ndarray, length: int) -> np.ndarray:
    """Zero the unused high bits of the tail word, in place."""
    mask = tail_mask(length)
    if mask != _ALL_ONES:
        words[..., -1] &= mask
    return words


def _native_words(words: np.ndarray) -> np.ndarray:
    """Contiguous uint64 array in the packed (little-endian) byte order."""
    arr = np.ascontiguousarray(words, dtype=np.uint64)
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI hosts
        arr = arr.byteswap()
    return arr


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 array of shape ``(..., N)`` into ``(..., ceil(N/64))`` words.

    Stream bit ``t`` of the input maps to bit ``t % 64`` of word ``t // 64``;
    tail bits beyond ``N`` are zero.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    if bits.ndim == 0:
        raise ShapeError("a bit stream needs at least one (stream) axis")
    length = bits.shape[-1]
    n_words = words_for_length(length)
    pad = n_words * WORD_BITS - length
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1
        )
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    words = np.ascontiguousarray(packed_bytes).view(np.uint64)
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI hosts
        words = words.byteswap()
    return words


def unpack_bits(words: np.ndarray, length: int) -> np.ndarray:
    """Unpack ``(..., W)`` words back into a ``(..., length)`` 0/1 array."""
    if length <= 0:
        raise ShapeError(f"stream length must be positive, got {length}")
    arr = _native_words(words)
    if arr.ndim == 0 or arr.shape[-1] != words_for_length(length):
        raise ShapeError(
            f"word array of shape {np.shape(words)} cannot hold a "
            f"{length}-bit stream"
        )
    as_bytes = arr.view(np.uint8)
    return np.unpackbits(as_bytes, axis=-1, bitorder="little", count=int(length))


#: byte value -> its 8 bits LSB-first; the allocation-free unpack table.
_BYTE_BITS = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1, bitorder="little"
)


def unpack_bits_into(words: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Unpack ``(..., W)`` words into a preallocated ``(..., W * 64)`` buffer.

    The allocation-free counterpart of :func:`unpack_bits` for hot loops
    that reuse a workspace buffer: the bit expansion is one gather through
    a 256-entry byte table (``np.take`` with ``out=``), so no intermediate
    array is created.  All ``W * 64`` bit positions are written, including
    the (zero) tail bits beyond the stream length -- callers slice
    ``out[..., :length]``.

    Args:
        words: packed streams of shape ``(..., W)``.
        out: C-contiguous ``uint8`` array of shape ``(..., W * 64)``.

    Returns:
        ``out``.
    """
    arr = _native_words(words)
    if arr.ndim == 0:
        raise ShapeError("a packed stream needs at least one (word) axis")
    expected = arr.shape[:-1] + (arr.shape[-1] * WORD_BITS,)
    if out.shape != expected:
        raise ShapeError(
            f"out shape {out.shape} does not match the unpacked shape "
            f"{expected}"
        )
    if out.dtype != np.uint8 or not out.flags.c_contiguous:
        raise ShapeError("out must be a C-contiguous uint8 array")
    as_bytes = arr.view(np.uint8)  # (..., W * 8)
    np.take(
        _BYTE_BITS,
        as_bytes,
        axis=0,
        out=out.reshape(as_bytes.shape + (8,)),
    )
    return out


def pack_comparator_words(
    random_words: np.ndarray, thresholds: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """SNG comparator straight to packed words: ``bit_t = [rw_t < threshold]``.

    The word-direct SNG kernel: compares one chunk of random comparison
    words against per-value thresholds and emits ``uint64`` packed stream
    words without ever materialising a full-stream byte-per-bit tensor.
    The 64 comparator outputs of one word are produced as a transient
    boolean block and folded into the word by the 8x8 bit-matrix transpose
    inside ``np.packbits(..., bitorder="little")``, so the live footprint
    is one comparison block, not the whole stream.  Callers that need a
    bounded footprint for long streams chunk the cycle axis (see
    :meth:`repro.sc.sng.StochasticNumberGenerator.generate_packed`).

    Args:
        random_words: integer comparison draws of shape ``(..., N)``.
        thresholds: integer comparator thresholds of shape ``(...)``.
        out: optional preallocated ``uint64`` output of shape
            ``(..., ceil(N / 64))``.

    Returns:
        Packed words of shape ``(..., ceil(N / 64))``; tail bits zero.
    """
    rw = np.asarray(random_words)
    if rw.ndim == 0:
        raise ShapeError("random words need at least one (cycle) axis")
    thresholds = np.asarray(thresholds)
    if thresholds.shape != rw.shape[:-1]:
        raise ShapeError(
            f"thresholds shape {thresholds.shape} incompatible with random "
            f"words of shape {rw.shape}"
        )
    length = rw.shape[-1]
    n_words = words_for_length(length)
    padded = n_words * WORD_BITS
    bits = np.zeros(rw.shape[:-1] + (padded,), dtype=bool)
    np.less(rw, thresholds[..., None], out=bits[..., :length])
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    words = np.ascontiguousarray(packed_bytes).view(np.uint64)
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI hosts
        words = words.byteswap()
    if out is not None:
        if out.shape != words.shape:
            raise ShapeError(
                f"out shape {out.shape} does not match the packed shape "
                f"{words.shape}"
            )
        out[...] = words
        return out
    return words


_POPCOUNT_LUT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def _popcount_words_fallback(words: np.ndarray) -> np.ndarray:
    """Byte-LUT population count (the NumPy < 2.0 path).

    Kept unconditionally defined so the unit tests can assert it agrees
    with ``np.bitwise_count`` on hosts that have both.
    """
    arr = np.ascontiguousarray(words, dtype=np.uint64)
    counts = _POPCOUNT_LUT[arr.view(np.uint8)]
    return counts.reshape(arr.shape + (8,)).sum(axis=-1, dtype=np.uint64)


if hasattr(np, "bitwise_count"):

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-word population count (``np.bitwise_count`` on NumPy >= 2.0)."""
        return np.bitwise_count(np.asarray(words, dtype=np.uint64))

else:  # pragma: no cover - NumPy < 2.0 fallback

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-word population count (byte-LUT fallback, NumPy < 2.0)."""
        return _popcount_words_fallback(words)


def ones_count(words: np.ndarray) -> np.ndarray:
    """Total set bits along the word axis (the popcount-based decode core)."""
    return popcount_words(words).sum(axis=-1, dtype=np.int64)


def prefix_ones_counts(
    words: np.ndarray, checkpoints, length: int
) -> np.ndarray:
    """Set-bit counts of stream *prefixes*: ``(..., W)`` -> ``(K, ...)``.

    ``checkpoints`` is a sequence of ``K`` prefix lengths; entry ``k`` of
    the result counts the ones among stream bits ``t < checkpoints[k]``.
    Because bit ``t`` lives in word ``t // 64`` at position ``t % 64``, a
    prefix count is one cumulative-popcount lookup plus (for checkpoints
    off a word boundary) a single masked popcount of the straddled word --
    the word layout makes partial-stream decoding nearly free, which is
    what the progressive-precision early exit of :mod:`repro.serve` is
    built on.

    Args:
        words: packed streams of shape ``(..., W)``.
        checkpoints: prefix lengths, each in ``[1, length]``.
        length: stream length ``N`` (``W == ceil(N / 64)``).

    Returns:
        ``int64`` array of shape ``(K, ...)`` of prefix ones counts.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim == 0 or words.shape[-1] != words_for_length(length):
        raise ShapeError(
            f"word array of shape {np.shape(words)} cannot hold a "
            f"{length}-bit stream"
        )
    checkpoints = [int(p) for p in checkpoints]
    for p in checkpoints:
        if not 1 <= p <= length:
            raise ShapeError(
                f"checkpoint {p} outside the stream length [1, {length}]"
            )
    # One cumulative popcount pass serves every checkpoint.
    cumulative = np.cumsum(popcount_words(words), axis=-1, dtype=np.int64)
    out = np.empty((len(checkpoints),) + words.shape[:-1], dtype=np.int64)
    for k, p in enumerate(checkpoints):
        full_words, rem = divmod(p, WORD_BITS)
        if full_words:
            total = cumulative[..., full_words - 1].copy()
        else:
            total = np.zeros(words.shape[:-1], dtype=np.int64)
        if rem:
            mask = np.uint64((1 << rem) - 1)
            total += popcount_words(words[..., full_words] & mask).astype(
                np.int64
            )
        out[k] = total
    return out


# -- word-parallel SC gate kernels ------------------------------------------


def _check_same_shape(a, b) -> None:
    if np.shape(a) != np.shape(b):
        raise ShapeError(
            f"operand shapes differ: {np.shape(a)} vs {np.shape(b)}"
        )


def packed_xnor(
    a: np.ndarray, b: np.ndarray, length: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Word-parallel XNOR (bipolar SC multiply): 64 gates per word op.

    ``out`` (optional) receives the result without allocating; it may
    alias ``a`` or ``b``.
    """
    _check_same_shape(a, b)
    out = np.bitwise_xor(a, b, out=out)
    np.bitwise_not(out, out=out)
    return _apply_tail_mask(out, length)


def packed_and(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Word-parallel AND (unipolar SC multiply).  Tail bits stay zero."""
    _check_same_shape(a, b)
    return np.bitwise_and(a, b, out=out)


def packed_or(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Word-parallel OR (sorter MAX).  Tail bits stay zero."""
    _check_same_shape(a, b)
    return np.bitwise_or(a, b, out=out)


def packed_mux(
    a: np.ndarray,
    b: np.ndarray,
    select: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Word-parallel 2:1 multiplexer: ``b`` where ``select`` bit set, else ``a``.

    With ``out``, the result is assembled in place via
    ``((a ^ b) & select) ^ a`` (two fewer transients than the masked-OR
    form); ``out`` may alias ``b`` but must not alias ``a`` or ``select``
    (both are read after ``out`` is first written).
    """
    _check_same_shape(a, b)
    select = np.asarray(select).astype(np.uint64, copy=False)
    if out is None:
        return (a & ~select) | (b & select)
    np.bitwise_xor(a, b, out=out)
    np.bitwise_and(out, select, out=out)
    np.bitwise_xor(out, a, out=out)
    return out


def packed_mux_add(
    words: np.ndarray, select: np.ndarray, length: int
) -> np.ndarray:
    """N-input multiplexer addition on packed operands.

    Args:
        words: packed streams of shape ``(n_inputs, ..., W)``.
        select: integer select values of shape ``(..., N)`` or ``(N,)`` in
            ``[0, n_inputs)`` (the *unpacked* per-cycle select sequence, as
            produced by a hardware select counter / RNG).
        length: stream length ``N``.

    Returns:
        Packed words of shape ``(..., W)``.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim < 2:
        raise ShapeError("packed_mux_add expects shape (n_inputs, ..., W)")
    n_inputs = words.shape[0]
    select = np.asarray(select)
    value_shape = words.shape[1:-1]
    if select.shape != value_shape + (length,) and select.shape != (length,):
        raise ShapeError(
            f"select shape {select.shape} incompatible with packed streams "
            f"{words.shape} of length {length}"
        )
    if np.any(select < 0) or np.any(select >= n_inputs):
        raise ShapeError(f"select values must lie in [0, {n_inputs})")
    select = np.broadcast_to(select, value_shape + (length,))
    out = np.zeros(words.shape[1:], dtype=np.uint64)
    for index in range(n_inputs):
        mask = pack_bits((select == index).astype(np.uint8))
        out |= words[index] & mask
    return out


def _csa_words(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Word-parallel full adder (carry-save 3:2 compressor).

    Treats the three operands as equal-weight bit planes and returns the
    ``(sum, carry)`` planes: ``sum`` keeps the operands' weight, ``carry``
    has twice that weight.  64 full adders evaluate per word operation.
    """
    partial = a ^ b
    return partial ^ c, (a & b) | (partial & c)


def packed_column_counts(
    words: np.ndarray, length: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Per-cycle ones counts across packed streams: ``(..., M, W) -> (..., N)``.

    Computes, for each stream bit position ``t``, how many of the ``M``
    packed streams carry a one at ``t`` -- the "column count" every sorter
    block recurrence consumes -- without ever unpacking the operand
    streams.  The ``M`` bit planes are reduced with a carry-save adder
    tree (:func:`_csa_words`; ``O(M)`` word operations in total), leaving
    one packed plane per count bit; only those ``ceil(log2(M + 1))``
    planes are unpacked and recombined, so the memory traffic is
    logarithmic in ``M`` instead of linear.

    Args:
        words: packed streams of shape ``(..., M, W)``.
        length: stream length ``N``.
        out: optional preallocated integer output of shape ``(..., N)``
            (any integer dtype wide enough for ``M``).

    Returns:
        Integer array of shape ``(..., N)`` with entries in ``[0, M]``
        (``uint8`` when ``M <= 255``, ``uint16`` otherwise, unless ``out``
        supplies the dtype).
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim < 2:
        raise ShapeError("packed_column_counts expects shape (..., M, W)")
    m = words.shape[-2]
    if m < 1:
        raise ShapeError("packed_column_counts needs at least one stream")
    # levels[j] holds the not-yet-reduced planes of weight 2**j.
    levels: list[list[np.ndarray]] = [[words[..., i, :] for i in range(m)]]
    j = 0
    while j < len(levels):
        planes = levels[j]
        while len(planes) >= 3:
            total, carry = _csa_words(planes.pop(), planes.pop(), planes.pop())
            planes.append(total)
            if j + 1 == len(levels):
                levels.append([])
            levels[j + 1].append(carry)
        if len(planes) == 2:  # half adder finishes the level
            a, b = planes.pop(), planes.pop()
            planes.append(a ^ b)
            if j + 1 == len(levels):
                levels.append([])
            levels[j + 1].append(a & b)
        j += 1
    dtype = np.uint8 if m <= 255 else np.uint16
    shape = words.shape[:-2] + (int(length),)
    if out is None:
        counts = np.zeros(shape, dtype=dtype)
    else:
        _check_counts_out(out, shape, m)
        counts = out
        counts[...] = 0
    for exponent, planes in enumerate(levels):
        if not planes:
            continue
        (plane,) = planes
        bits = unpack_bits(plane, length)
        if exponent:
            counts += bits.astype(counts.dtype) << exponent
        else:
            np.add(counts, bits, out=counts, casting="unsafe")
    return counts


def _check_counts_out(out: np.ndarray, shape: tuple[int, ...], m: int) -> None:
    """Validate a caller-supplied column-counts output buffer.

    Counts reach ``m``, so a too-narrow integer dtype would wrap silently
    (the accumulation casts into ``out``'s dtype); reject it loudly.
    """
    if out.shape != shape or out.dtype.kind not in "iu":
        raise ShapeError(
            f"out must be an integer array of shape {shape}, got "
            f"{out.dtype} {out.shape}"
        )
    if np.iinfo(out.dtype).max < m:
        raise ShapeError(
            f"out dtype {out.dtype} cannot represent counts up to {m}"
        )


# -- fused XNOR-product reductions -------------------------------------------
#
# The packed inference backend's inner product is "XNOR the input streams
# with the weight streams, then count ones per cycle".  Materialising the
# whole (..., M, W) product tensor first and reducing it afterwards makes
# the product tensor the peak allocation of every layer; the fused kernels
# below compute the products one plane at a time into reusable buffers and
# reduce them *as they are produced*, so at most O(log M) equal-weight
# carry-save planes (plus one product plane) are ever live -- the streaming
# formulation of the CSA tree in :func:`packed_column_counts`, with the
# identical gate count and bit-identical results.


def _plane_buffers(workspace, key: str, shape: tuple[int, ...]):
    """A take/recycle pair over workspace-backed ``uint64`` plane buffers."""
    free: list[np.ndarray] = []
    created = 0

    def take() -> np.ndarray:
        nonlocal created
        if free:
            return free.pop()
        buf = workspace.array((key, created), shape, np.uint64)
        created += 1
        return buf

    return take, free


def _csa_push(levels, buf: np.ndarray, take, free, start_level: int = 0) -> None:
    """Add one equal-weight plane to the streaming carry-save accumulator.

    ``levels[j]`` holds the pending planes of weight ``2**j`` (at most
    two); a third plane triggers a 3:2 compression whose carry cascades
    upward.  Operands are consumed in place: of the three compressed
    buffers one becomes the sum, one is recycled, and a fresh buffer
    carries upward.
    """
    j = start_level
    while True:
        if j == len(levels):
            levels.append([])
        levels[j].append(buf)
        if len(levels[j]) < 3:
            return
        x, y, z = levels[j]
        carry = take()
        np.bitwise_and(x, y, out=carry)
        np.bitwise_xor(x, y, out=x)  # x = x ^ y
        np.bitwise_and(x, z, out=y)  # y = (x ^ y) & z
        np.bitwise_or(carry, y, out=carry)
        np.bitwise_xor(x, z, out=x)  # x = sum plane
        free.append(y)
        free.append(z)
        levels[j] = [x]
        buf = carry
        j += 1


def _csa_finalize(levels, take, free) -> None:
    """Half-add the two-plane levels so every level holds at most one plane."""
    j = 0
    while j < len(levels):
        if len(levels[j]) == 2:
            x, y = levels[j]
            carry = take()
            np.bitwise_and(x, y, out=carry)
            np.bitwise_xor(x, y, out=x)
            free.append(y)
            levels[j] = [x]
            _csa_push(levels, carry, take, free, j + 1)
        j += 1


def fused_xnor_column_counts(
    a: np.ndarray,
    b: np.ndarray,
    length: int,
    extra: np.ndarray | None = None,
    out: np.ndarray | None = None,
    workspace=None,
    key: str = "fused-counts",
) -> np.ndarray:
    """Column counts of XNOR product streams without the product tensor.

    Bit-identical to ``packed_column_counts(packed_xnor(a, b, length),
    length)`` (with ``extra`` planes appended to the products), but the
    ``(..., M, W)`` product tensor is never materialised: each product
    plane is formed in a reusable buffer and immediately folded into the
    streaming carry-save accumulator, so only ``O(log M)`` live planes
    exist at any time.  This is what lets the packed backend process far
    larger position chunks within the same memory budget.

    Args:
        a: packed streams of shape ``(..., M, W)`` (broadcastable
            against ``b`` on the leading axes).
        b: packed streams of shape ``(..., M, W)``.
        length: stream length ``N``.
        extra: optional packed streams of shape ``(..., K, W)`` counted
            as-is (no XNOR) -- e.g. bias streams; tail bits must already
            be zero.
        out: optional preallocated integer output of shape ``(..., N)``.
        workspace: optional :class:`repro.workspace.Workspace` whose
            buffers are reused across calls (near-zero steady-state
            allocation); ``None`` uses a throwaway arena.
        key: workspace key namespace (distinct concurrent call sites on
            one workspace must use distinct keys).

    Returns:
        Integer array of shape ``(..., N)`` with entries in
        ``[0, M + K]``.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.ndim < 2 or b.ndim < 2:
        raise ShapeError("fused_xnor_column_counts expects shape (..., M, W)")
    if a.shape[-2:] != b.shape[-2:]:
        raise ShapeError(
            f"operand (M, W) axes differ: {a.shape[-2:]} vs {b.shape[-2:]}"
        )
    m_products = a.shape[-2]
    n_words = a.shape[-1]
    if n_words != words_for_length(length):
        raise ShapeError(
            f"word arrays of shape {a.shape} cannot hold {length}-bit streams"
        )
    n_extra = 0
    if extra is not None:
        extra = np.asarray(extra, dtype=np.uint64)
        if extra.ndim < 2 or extra.shape[-1] != n_words:
            raise ShapeError(
                f"extra planes of shape {extra.shape} incompatible with "
                f"{n_words}-word streams"
            )
        n_extra = extra.shape[-2]
    m_total = m_products + n_extra
    if m_total < 1:
        raise ShapeError("fused_xnor_column_counts needs at least one stream")
    lead_shapes = [a.shape[:-2], b.shape[:-2]]
    if extra is not None:
        lead_shapes.append(extra.shape[:-2])
    plane_shape = np.broadcast_shapes(*lead_shapes) + (n_words,)

    ws = workspace if workspace is not None else Workspace()
    take, free = _plane_buffers(ws, key, plane_shape)
    mask = tail_mask(length)
    levels: list[list[np.ndarray]] = [[]]
    for i in range(m_products):
        buf = take()
        np.bitwise_xor(a[..., i, :], b[..., i, :], out=buf)
        np.bitwise_not(buf, out=buf)
        if mask != _ALL_ONES:
            buf[..., -1] &= mask
        _csa_push(levels, buf, take, free)
    for i in range(n_extra):
        buf = take()
        buf[...] = extra[..., i, :]
        _csa_push(levels, buf, take, free)
    _csa_finalize(levels, take, free)

    dtype = np.uint8 if m_total <= 255 else np.uint16
    shape = plane_shape[:-1] + (int(length),)
    if out is None:
        counts = np.zeros(shape, dtype=dtype)
    else:
        _check_counts_out(out, shape, m_total)
        counts = out
        counts[...] = 0
    padded = n_words * WORD_BITS
    bits = ws.array((key, "bits"), plane_shape[:-1] + (padded,), np.uint8)
    for exponent, planes in enumerate(levels):
        if not planes:
            continue
        (plane,) = planes
        unpack_bits_into(plane, bits)
        view = bits[..., :length]
        if exponent == 0:
            np.add(counts, view, out=counts, casting="unsafe")
        elif counts.dtype == np.uint8:
            # m_total <= 255, so exponent <= 7 and the shifted 0/1 plane
            # still fits a byte; shift in place and add.
            np.left_shift(view, exponent, out=view)
            np.add(counts, view, out=counts, casting="unsafe")
        else:
            # Upcast the 0/1 plane *before* shifting: a shift ufunc picks
            # its loop from the input dtypes, so shifting the uint8 view
            # into a uint16 out would wrap at exponent >= 8.
            wide = ws.array((key, "wide"), counts.shape, counts.dtype)
            np.copyto(wide, view, casting="unsafe")
            np.left_shift(wide, exponent, out=wide)
            np.add(counts, wide, out=counts, casting="unsafe")
    return counts


def fused_xnor_majority_chain(
    a: np.ndarray,
    b: np.ndarray,
    length: int,
    out: np.ndarray | None = None,
    workspace=None,
    key: str = "fused-chain",
) -> np.ndarray:
    """Majority chain over XNOR product streams without the product tensor.

    Bit-identical to ``majority_chain_words(packed_xnor(a, b, length))``
    -- the categorization-layer reduction -- but the ``(..., K, W)``
    product tensor is never materialised: products are formed pairwise in
    two reusable plane buffers and folded into the chain accumulator gate
    by gate, mirroring the hardware factorisation exactly.

    Args:
        a: packed streams of shape ``(..., K, W)`` (broadcastable
            against ``b`` on the leading axes).
        b: packed streams of shape ``(..., K, W)``.
        length: stream length ``N``.
        out: optional preallocated ``uint64`` output of shape
            ``(..., W)``.
        workspace: optional :class:`repro.workspace.Workspace`; ``None``
            uses a throwaway arena.
        key: workspace key namespace.

    Returns:
        Packed words of shape ``(..., W)``.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.ndim < 2 or b.ndim < 2:
        raise ShapeError("fused_xnor_majority_chain expects shape (..., K, W)")
    if a.shape[-2:] != b.shape[-2:]:
        raise ShapeError(
            f"operand (K, W) axes differ: {a.shape[-2:]} vs {b.shape[-2:]}"
        )
    k = a.shape[-2]
    n_words = a.shape[-1]
    if n_words != words_for_length(length):
        raise ShapeError(
            f"word arrays of shape {a.shape} cannot hold {length}-bit streams"
        )
    if k < 1:
        raise ShapeError("fused_xnor_majority_chain needs at least one stream")
    plane_shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2]) + (n_words,)
    if out is None:
        acc = np.empty(plane_shape, dtype=np.uint64)
    else:
        if out.shape != plane_shape or out.dtype != np.uint64:
            raise ShapeError(
                f"out must be a uint64 array of shape {plane_shape}, got "
                f"{out.dtype} {out.shape}"
            )
        acc = out
    mask = tail_mask(length)

    def product_into(i: int, buf: np.ndarray) -> None:
        np.bitwise_xor(a[..., i, :], b[..., i, :], out=buf)
        np.bitwise_not(buf, out=buf)
        if mask != _ALL_ONES:
            buf[..., -1] &= mask

    if k == 1:
        product_into(0, acc)
        return acc
    ws = workspace if workspace is not None else Workspace()
    first = ws.array((key, 0), plane_shape, np.uint64)
    if k == 2:
        product_into(0, acc)
        product_into(1, first)
        np.bitwise_and(acc, first, out=acc)
        return acc
    second = ws.array((key, 1), plane_shape, np.uint64)
    # acc = Maj(p0, p1, p2) = (p0 & (p1 | p2)) | (p1 & p2)
    product_into(0, acc)
    product_into(1, first)
    product_into(2, second)
    scratch = ws.array((key, 2), plane_shape, np.uint64)
    np.bitwise_or(first, second, out=scratch)
    np.bitwise_and(acc, scratch, out=acc)
    np.bitwise_and(first, second, out=first)
    np.bitwise_or(acc, first, out=acc)
    index = 3
    while index < k:
        if index + 1 < k:
            product_into(index, first)
            product_into(index + 1, second)
            np.bitwise_or(first, second, out=scratch)
            np.bitwise_and(scratch, acc, out=scratch)
            np.bitwise_and(first, second, out=first)
            np.bitwise_or(scratch, first, out=acc)
            index += 2
        else:
            product_into(index, first)
            np.bitwise_and(acc, first, out=acc)
            index += 1
    return acc


def majority3_words(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Word-parallel 3-input majority: ``(a&b) | (a&c) | (b&c)``."""
    return (a & b) | (a & c) | (b & c)


def majority_chain_words(words: np.ndarray) -> np.ndarray:
    """Word-parallel majority chain over packed product streams.

    Mirrors the hardware chain factorisation of
    :class:`~repro.blocks.categorization.MajorityChainCategorizationBlock`
    bit-for-bit: ``a_0 = Maj(b_1, b_2, b_3)``, then one gate per further
    input pair, with a single trailing input paired with constant 0 (so the
    last gate degenerates to an AND).

    Args:
        words: packed streams of shape ``(..., K, W)``.

    Returns:
        Packed words of shape ``(..., W)``.
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim < 2:
        raise ShapeError("majority_chain_words expects shape (..., K, W)")
    k = words.shape[-2]
    if k == 1:
        return words[..., 0, :].copy()
    if k == 2:
        return words[..., 0, :] & words[..., 1, :]
    acc = majority3_words(words[..., 0, :], words[..., 1, :], words[..., 2, :])
    index = 3
    while index < k:
        if index + 1 < k:
            acc = majority3_words(
                acc, words[..., index, :], words[..., index + 1, :]
            )
            index += 2
        else:
            acc = acc & words[..., index, :]
            index += 1
    return acc


# -- container ---------------------------------------------------------------


class PackedBitstream:
    """A (possibly multi-dimensional) word-packed stochastic bit stream.

    Mirrors :class:`~repro.sc.bitstream.Bitstream` with the stream axis
    stored 64 bits per ``uint64`` word (see the module docstring for the
    exact layout).  Use :meth:`from_bits` /
    :meth:`~repro.sc.bitstream.Bitstream.packed` to pack and :meth:`unpack`
    / :meth:`~repro.sc.bitstream.Bitstream.from_packed` to go back.

    Args:
        words: ``uint64`` array of shape ``(..., ceil(length / 64))``.
        length: stream length ``N`` in bits.
        encoding: ``"bipolar"`` (default) or ``"unipolar"``.
    """

    __slots__ = ("_words", "_length", "_encoding")

    def __init__(
        self, words: np.ndarray, length: int, encoding: str = BIPOLAR
    ) -> None:
        arr = np.array(words, dtype=np.uint64, copy=True)
        if arr.ndim == 0:
            raise ShapeError("a packed stream needs at least one (word) axis")
        if length <= 0:
            raise ShapeError(f"stream length must be positive, got {length}")
        if arr.shape[-1] != words_for_length(length):
            raise ShapeError(
                f"word array of shape {arr.shape} cannot hold a "
                f"{length}-bit stream"
            )
        self._words = _apply_tail_mask(arr, length)
        self._length = int(length)
        self._encoding = validate_encoding(encoding)

    @classmethod
    def _trusted(
        cls, words: np.ndarray, length: int, encoding: str
    ) -> "PackedBitstream":
        """Wrap kernel output without copying or re-masking.

        The caller guarantees ``words`` is a fresh ``uint64`` array with the
        correct word count and a clean (zeroed) tail, and that ``encoding``
        is already validated.
        """
        obj = cls.__new__(cls)
        obj._words = words
        obj._length = length
        obj._encoding = encoding
        return obj

    @classmethod
    def from_bits(
        cls, bits: np.ndarray, encoding: str = BIPOLAR
    ) -> "PackedBitstream":
        """Pack a 0/1 array whose last axis is the stream axis."""
        from repro.sc.bitstream import _validate_bits

        bits = np.asarray(bits)
        if bits.ndim == 0:
            raise ShapeError("a bit stream needs at least one (stream) axis")
        _validate_bits(bits)
        return cls._trusted(
            pack_bits(bits), int(bits.shape[-1]), validate_encoding(encoding)
        )

    # -- basic properties --------------------------------------------------

    @property
    def words(self) -> np.ndarray:
        """The underlying ``uint64`` word array (last axis = word axis)."""
        return self._words

    @property
    def encoding(self) -> str:
        """Encoding format of this stream."""
        return self._encoding

    @property
    def length(self) -> int:
        """Stream length ``N`` in bits."""
        return self._length

    @property
    def n_words(self) -> int:
        """Words per stream (``ceil(length / 64)``)."""
        return int(self._words.shape[-1])

    @property
    def value_shape(self) -> tuple[int, ...]:
        """Shape of the encoded value tensor (all axes except the words)."""
        return tuple(self._words.shape[:-1])

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedBitstream(value_shape={self.value_shape}, "
            f"length={self._length}, encoding={self._encoding!r})"
        )

    # -- decoding ----------------------------------------------------------

    def unpack(self) -> np.ndarray:
        """The stream as a plain ``uint8`` 0/1 array of shape ``(..., N)``."""
        return unpack_bits(self._words, self._length)

    def to_bitstream(self):
        """Convert back to a byte-per-bit :class:`Bitstream`."""
        from repro.sc.bitstream import Bitstream

        return Bitstream._trusted(self.unpack(), self._encoding)

    def ones_count(self) -> np.ndarray:
        """Number of set bits along the stream axis (popcount decode)."""
        return ones_count(self._words)

    def ones_fraction(self) -> np.ndarray:
        """Fraction of ones along the stream axis."""
        return self.ones_count() / float(self._length)

    def to_values(self) -> np.ndarray:
        """Decode the stream back to real values according to its encoding."""
        fraction = self.ones_fraction()
        if self._encoding == BIPOLAR:
            return bipolar_decode(fraction)
        return unipolar_decode(fraction)
