"""Bit-stream container for stochastic numbers.

A :class:`Bitstream` wraps a ``uint8`` array whose **last axis** is the
stream (time) dimension of length ``N``.  Leading axes carry arbitrary
tensor structure, so a whole convolution feature map can be represented by
one object of shape ``(channels, height, width, N)``.

The container knows its encoding (unipolar or bipolar) so that decoding and
arithmetic helpers do not need to be told twice.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import EncodingError, ShapeError
from repro.sc.encoding import (
    BIPOLAR,
    UNIPOLAR,
    bipolar_decode,
    bipolar_encode_probability,
    unipolar_decode,
    unipolar_encode_probability,
    validate_encoding,
)

__all__ = ["Bitstream"]


class Bitstream:
    """A (possibly multi-dimensional) stochastic bit stream.

    Args:
        bits: array-like of 0/1 values; the last axis is the stream axis.
        encoding: ``"bipolar"`` (default) or ``"unipolar"``.
    """

    __slots__ = ("_bits", "_encoding")

    def __init__(self, bits: np.ndarray | Iterable[int], encoding: str = BIPOLAR) -> None:
        arr = np.asarray(bits)
        if arr.ndim == 0:
            raise ShapeError("a bit stream needs at least one (stream) axis")
        if arr.size and not np.isin(np.unique(arr), (0, 1)).all():
            raise EncodingError("bit streams may only contain 0 and 1")
        self._bits = arr.astype(np.uint8)
        self._encoding = validate_encoding(encoding)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_probabilities(
        cls,
        probabilities: np.ndarray | float,
        length: int,
        rng: np.random.Generator,
        encoding: str = BIPOLAR,
    ) -> "Bitstream":
        """Sample a stream whose bits are Bernoulli(``probabilities``).

        This is the *ideal* (infinite-precision comparator) stream
        generator; hardware SNGs live in :mod:`repro.sc.sng`.
        """
        if length <= 0:
            raise ShapeError(f"stream length must be positive, got {length}")
        p = np.asarray(probabilities, dtype=np.float64)
        if np.any(p < 0.0) or np.any(p > 1.0):
            raise EncodingError("probabilities must lie in [0, 1]")
        draws = rng.random(p.shape + (length,))
        return cls((draws < p[..., None]).astype(np.uint8), encoding)

    @classmethod
    def from_values(
        cls,
        values: np.ndarray | float,
        length: int,
        rng: np.random.Generator,
        encoding: str = BIPOLAR,
    ) -> "Bitstream":
        """Encode real values into a sampled stream of the given length."""
        if encoding == BIPOLAR:
            p = bipolar_encode_probability(values)
        elif encoding == UNIPOLAR:
            p = unipolar_encode_probability(values)
        else:  # pragma: no cover - validate_encoding covers this
            raise EncodingError(f"unknown encoding {encoding!r}")
        return cls.from_probabilities(p, length, rng, encoding)

    @classmethod
    def constant_zero_value(cls, length: int, encoding: str = BIPOLAR) -> "Bitstream":
        """The paper's "neutral noise": an alternating 0/1 stream of value 0.

        In bipolar encoding an alternating ``0101...`` stream has exactly
        half of its bits set, i.e. represents the value 0 with zero variance.
        It is appended to even-sized feature-extraction inputs so that
        ``(M - 1) / 2`` stays an integer.
        """
        if length <= 0:
            raise ShapeError(f"stream length must be positive, got {length}")
        bits = (np.arange(length) % 2).astype(np.uint8)
        return cls(bits, encoding)

    # -- basic properties --------------------------------------------------

    @property
    def bits(self) -> np.ndarray:
        """The underlying ``uint8`` bit array (last axis = stream axis)."""
        return self._bits

    @property
    def encoding(self) -> str:
        """Encoding format of this stream."""
        return self._encoding

    @property
    def length(self) -> int:
        """Stream length ``N``."""
        return int(self._bits.shape[-1])

    @property
    def value_shape(self) -> tuple[int, ...]:
        """Shape of the encoded value tensor (all axes except the stream)."""
        return tuple(self._bits.shape[:-1])

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bitstream(shape={self._bits.shape}, encoding={self._encoding!r}, "
            f"value={np.array2string(np.asarray(self.to_values()), precision=3)})"
        )

    # -- decoding ----------------------------------------------------------

    def ones_fraction(self) -> np.ndarray:
        """Fraction of ones along the stream axis."""
        return self._bits.mean(axis=-1)

    def to_values(self) -> np.ndarray:
        """Decode the stream back to real values according to its encoding."""
        fraction = self.ones_fraction()
        if self._encoding == BIPOLAR:
            return bipolar_decode(fraction)
        return unipolar_decode(fraction)

    # -- structural helpers --------------------------------------------------

    def reshape_values(self, shape: tuple[int, ...]) -> "Bitstream":
        """Reshape the value axes, keeping the stream axis last."""
        new_shape = tuple(shape) + (self.length,)
        return Bitstream(self._bits.reshape(new_shape), self._encoding)

    def stack(self, others: Iterable["Bitstream"]) -> "Bitstream":
        """Stack this stream with others along a new leading value axis."""
        streams = [self, *others]
        lengths = {s.length for s in streams}
        encodings = {s.encoding for s in streams}
        if len(lengths) != 1:
            raise ShapeError(f"cannot stack streams of different lengths {lengths}")
        if len(encodings) != 1:
            raise EncodingError("cannot stack streams with different encodings")
        return Bitstream(np.stack([s.bits for s in streams], axis=0), self._encoding)

    def select(self, index: int) -> "Bitstream":
        """Select one entry along the first value axis."""
        if self._bits.ndim < 2:
            raise ShapeError("select() requires at least one value axis")
        return Bitstream(self._bits[index], self._encoding)

    def absolute_error(self, reference: np.ndarray | float) -> np.ndarray:
        """Absolute error of the decoded values against a reference tensor."""
        return np.abs(self.to_values() - np.asarray(reference, dtype=np.float64))
