"""Bit-stream container for stochastic numbers.

A :class:`Bitstream` wraps a ``uint8`` array whose **last axis** is the
stream (time) dimension of length ``N``.  Leading axes carry arbitrary
tensor structure, so a whole convolution feature map can be represented by
one object of shape ``(channels, height, width, N)``.

The container knows its encoding (unipolar or bipolar) so that decoding and
arithmetic helpers do not need to be told twice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import EncodingError, ShapeError
from repro.sc.encoding import (
    BIPOLAR,
    UNIPOLAR,
    bipolar_decode,
    bipolar_encode_probability,
    unipolar_decode,
    unipolar_encode_probability,
    validate_encoding,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sc.packed import PackedBitstream

__all__ = ["Bitstream"]


def _validate_bits(arr: np.ndarray) -> None:
    """Cheap 0/1 domain check (single min/max pass, no sort).

    Integer and boolean arrays only need a range check; anything else (e.g.
    floats) additionally needs an exact membership test so values like 0.5
    are still rejected.
    """
    if not arr.size:
        return
    if arr.dtype == np.bool_:
        return
    if arr.dtype.kind in "iu":
        if arr.max() > 1 or arr.min() < 0:
            raise EncodingError("bit streams may only contain 0 and 1")
        return
    if not ((arr == 0) | (arr == 1)).all():
        raise EncodingError("bit streams may only contain 0 and 1")


class Bitstream:
    """A (possibly multi-dimensional) stochastic bit stream.

    Args:
        bits: array-like of 0/1 values; the last axis is the stream axis.
        encoding: ``"bipolar"`` (default) or ``"unipolar"``.
    """

    __slots__ = ("_bits", "_encoding")

    def __init__(self, bits: np.ndarray | Iterable[int], encoding: str = BIPOLAR) -> None:
        arr = np.asarray(bits)
        if arr.ndim == 0:
            raise ShapeError("a bit stream needs at least one (stream) axis")
        _validate_bits(arr)
        self._bits = arr.astype(np.uint8)
        self._encoding = validate_encoding(encoding)

    # -- constructors ------------------------------------------------------

    @classmethod
    def _trusted(cls, bits: np.ndarray, encoding: str) -> "Bitstream":
        """Wrap already-validated internal output without copy or checks.

        Fast path for :mod:`repro.sc.ops` and the block models, whose
        outputs are fresh ``uint8`` 0/1 arrays by construction; ``encoding``
        must already be a validated encoding tag.
        """
        obj = cls.__new__(cls)
        obj._bits = bits
        obj._encoding = encoding
        return obj

    @classmethod
    def from_probabilities(
        cls,
        probabilities: np.ndarray | float,
        length: int,
        rng: np.random.Generator,
        encoding: str = BIPOLAR,
    ) -> "Bitstream":
        """Sample a stream whose bits are Bernoulli(``probabilities``).

        This is the *ideal* (infinite-precision comparator) stream
        generator; hardware SNGs live in :mod:`repro.sc.sng`.
        """
        if length <= 0:
            raise ShapeError(f"stream length must be positive, got {length}")
        p = np.asarray(probabilities, dtype=np.float64)
        if np.any(p < 0.0) or np.any(p > 1.0):
            raise EncodingError("probabilities must lie in [0, 1]")
        draws = rng.random(p.shape + (length,))
        bits = (draws < p[..., None]).astype(np.uint8)
        return cls._trusted(bits, validate_encoding(encoding))

    @classmethod
    def from_values(
        cls,
        values: np.ndarray | float,
        length: int,
        rng: np.random.Generator,
        encoding: str = BIPOLAR,
    ) -> "Bitstream":
        """Encode real values into a sampled stream of the given length."""
        if encoding == BIPOLAR:
            p = bipolar_encode_probability(values)
        elif encoding == UNIPOLAR:
            p = unipolar_encode_probability(values)
        else:  # pragma: no cover - validate_encoding covers this
            raise EncodingError(f"unknown encoding {encoding!r}")
        return cls.from_probabilities(p, length, rng, encoding)

    @classmethod
    def constant_zero_value(cls, length: int, encoding: str = BIPOLAR) -> "Bitstream":
        """The paper's "neutral noise": an alternating 0/1 stream of value 0.

        In bipolar encoding an alternating ``0101...`` stream has exactly
        half of its bits set, i.e. represents the value 0 with zero variance.
        It is appended to even-sized feature-extraction inputs so that
        ``(M - 1) / 2`` stays an integer.
        """
        if length <= 0:
            raise ShapeError(f"stream length must be positive, got {length}")
        bits = (np.arange(length) % 2).astype(np.uint8)
        return cls._trusted(bits, validate_encoding(encoding))

    @classmethod
    def from_packed(cls, packed: "PackedBitstream") -> "Bitstream":
        """Unpack a word-packed stream back into a byte-per-bit stream."""
        return cls._trusted(packed.unpack(), packed.encoding)

    # -- basic properties --------------------------------------------------

    @property
    def bits(self) -> np.ndarray:
        """The underlying ``uint8`` bit array (last axis = stream axis)."""
        return self._bits

    @property
    def encoding(self) -> str:
        """Encoding format of this stream."""
        return self._encoding

    @property
    def length(self) -> int:
        """Stream length ``N``."""
        return int(self._bits.shape[-1])

    @property
    def value_shape(self) -> tuple[int, ...]:
        """Shape of the encoded value tensor (all axes except the stream)."""
        return tuple(self._bits.shape[:-1])

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bitstream(shape={self._bits.shape}, encoding={self._encoding!r}, "
            f"value={np.array2string(np.asarray(self.to_values()), precision=3)})"
        )

    # -- decoding ----------------------------------------------------------

    def ones_fraction(self) -> np.ndarray:
        """Fraction of ones along the stream axis."""
        return self._bits.mean(axis=-1)

    def to_values(self) -> np.ndarray:
        """Decode the stream back to real values according to its encoding."""
        fraction = self.ones_fraction()
        if self._encoding == BIPOLAR:
            return bipolar_decode(fraction)
        return unipolar_decode(fraction)

    # -- packed interop ------------------------------------------------------

    def packed(self) -> "PackedBitstream":
        """This stream packed 64 bits per ``uint64`` word.

        The packed twin carries the same value structure and encoding; all
        of :mod:`repro.sc.ops` dispatches to the word-parallel kernels when
        given packed operands.
        """
        from repro.sc.packed import PackedBitstream, pack_bits

        return PackedBitstream._trusted(
            pack_bits(self._bits), self.length, self._encoding
        )

    # -- structural helpers --------------------------------------------------

    def reshape_values(self, shape: tuple[int, ...]) -> "Bitstream":
        """Reshape the value axes, keeping the stream axis last.

        Returns an independent copy (never a view of this stream's bits).
        """
        new_shape = tuple(shape) + (self.length,)
        return Bitstream._trusted(
            self._bits.reshape(new_shape).copy(), self._encoding
        )

    def stack(self, others: Iterable["Bitstream"]) -> "Bitstream":
        """Stack this stream with others along a new leading value axis."""
        streams = [self, *others]
        lengths = {s.length for s in streams}
        encodings = {s.encoding for s in streams}
        if len(lengths) != 1:
            raise ShapeError(f"cannot stack streams of different lengths {lengths}")
        if len(encodings) != 1:
            raise EncodingError("cannot stack streams with different encodings")
        return Bitstream._trusted(
            np.stack([s.bits for s in streams], axis=0), self._encoding
        )

    def select(self, index: int) -> "Bitstream":
        """Select one entry along the first value axis.

        Returns an independent copy (never a view of this stream's bits).
        """
        if self._bits.ndim < 2:
            raise ShapeError("select() requires at least one value axis")
        return Bitstream._trusted(self._bits[index].copy(), self._encoding)

    def absolute_error(self, reference: np.ndarray | float) -> np.ndarray:
        """Absolute error of the decoded values against a reference tensor."""
        return np.abs(self.to_values() - np.asarray(reference, dtype=np.float64))
