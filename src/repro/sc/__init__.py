"""Stochastic-computing substrate.

Everything that is generic stochastic computing (independent of AQFP or
CMOS) lives here: encoding/decoding between real values and bit streams,
stochastic number generators, the elementary SC arithmetic gates (XNOR and
AND multipliers, MUX adders), the approximate parallel counter and the
Btanh finite-state-machine activation used by the CMOS baseline, and the
stream-correlation metrics used in the analysis.
"""

from repro.sc.apc import approximate_parallel_counter, exact_parallel_count
from repro.sc.bitstream import Bitstream
from repro.sc.correlation import stochastic_cross_correlation
from repro.sc.encoding import (
    BIPOLAR,
    UNIPOLAR,
    bipolar_decode,
    bipolar_encode_probability,
    unipolar_decode,
    unipolar_encode_probability,
)
from repro.sc.fsm import BtanhFsm
from repro.sc.packed import PackedBitstream, pack_bits, unpack_bits
from repro.sc.ops import (
    and_multiply,
    mux_add,
    mux_scaled_add,
    or_gate,
    xnor_multiply,
)
from repro.sc.sng import StochasticNumberGenerator

__all__ = [
    "Bitstream",
    "PackedBitstream",
    "pack_bits",
    "unpack_bits",
    "BIPOLAR",
    "UNIPOLAR",
    "bipolar_encode_probability",
    "bipolar_decode",
    "unipolar_encode_probability",
    "unipolar_decode",
    "StochasticNumberGenerator",
    "xnor_multiply",
    "and_multiply",
    "mux_add",
    "mux_scaled_add",
    "or_gate",
    "approximate_parallel_counter",
    "exact_parallel_count",
    "BtanhFsm",
    "stochastic_cross_correlation",
]
