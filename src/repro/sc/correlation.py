"""Stream-correlation analysis.

Stochastic-computing accuracy depends on the independence of the operand
streams: an XNOR multiplier is only exact for uncorrelated inputs.  The
stochastic cross-correlation (SCC) metric of Alaghi & Hayes quantifies the
departure from independence and is used in our tests to show that (a) the
RNG-matrix sharing scheme keeps operand correlation negligible and (b) the
accuracy penalty of deliberately correlated streams behaves as expected.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["stochastic_cross_correlation", "multiplication_error"]


def stochastic_cross_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Stochastic cross-correlation (SCC) between two bit streams.

    SCC is 0 for independent streams, +1 for maximally positively correlated
    streams and -1 for maximally negatively correlated streams.
    """
    a = np.asarray(a).ravel().astype(np.float64)
    b = np.asarray(b).ravel().astype(np.float64)
    if a.shape != b.shape:
        raise ShapeError(f"stream lengths differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ShapeError("streams must be non-empty")
    n = a.size
    p_a = a.mean()
    p_b = b.mean()
    p_ab = (a * b).mean()
    delta = p_ab - p_a * p_b
    if delta > 0:
        denom = min(p_a, p_b) - p_a * p_b
    else:
        denom = p_a * p_b - max(p_a + p_b - 1.0, 0.0)
    if abs(denom) < 1.0 / (n * n):
        return 0.0
    return float(np.clip(delta / denom, -1.0, 1.0))


def multiplication_error(a_bits: np.ndarray, b_bits: np.ndarray) -> float:
    """Absolute error of a bipolar XNOR multiplication for given operands.

    Decodes both operands and their XNOR product and compares against the
    real-valued product; a convenience wrapper used in correlation studies.
    """
    a_bits = np.asarray(a_bits).astype(np.uint8)
    b_bits = np.asarray(b_bits).astype(np.uint8)
    if a_bits.shape != b_bits.shape:
        raise ShapeError(f"stream shapes differ: {a_bits.shape} vs {b_bits.shape}")
    a_val = 2.0 * a_bits.mean() - 1.0
    b_val = 2.0 * b_bits.mean() - 1.0
    product_bits = np.logical_not(np.logical_xor(a_bits, b_bits))
    product_val = 2.0 * product_bits.mean() - 1.0
    return float(abs(product_val - a_val * b_val))
