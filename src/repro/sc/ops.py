"""Elementary stochastic-computing arithmetic.

These are the textbook SC gates summarised in the paper's Fig. 4:

* unipolar multiplication  -> AND gate,
* bipolar multiplication   -> XNOR gate,
* scaled addition          -> multiplexer tree (output is the mean of the
  inputs, i.e. the sum scaled by ``1 / n``),
* OR gate                  -> used inside sorters (max of two bits).

All functions operate on plain bit arrays whose last axis is the stream
axis, or on :class:`~repro.sc.bitstream.Bitstream` objects.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sc.bitstream import Bitstream
from repro.sc.encoding import BIPOLAR, UNIPOLAR

__all__ = [
    "xnor_multiply",
    "and_multiply",
    "or_gate",
    "mux_add",
    "mux_scaled_add",
]


def _as_bits(stream: Bitstream | np.ndarray) -> np.ndarray:
    if isinstance(stream, Bitstream):
        return stream.bits
    return np.asarray(stream, dtype=np.uint8)


def _check_same_shape(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ShapeError(f"operand shapes differ: {a.shape} vs {b.shape}")


def xnor_multiply(a: Bitstream | np.ndarray, b: Bitstream | np.ndarray) -> Bitstream:
    """Bipolar SC multiplication: one XNOR gate per stream bit."""
    bits_a = _as_bits(a)
    bits_b = _as_bits(b)
    _check_same_shape(bits_a, bits_b)
    return Bitstream(np.logical_not(np.logical_xor(bits_a, bits_b)).astype(np.uint8), BIPOLAR)


def and_multiply(a: Bitstream | np.ndarray, b: Bitstream | np.ndarray) -> Bitstream:
    """Unipolar SC multiplication: one AND gate per stream bit."""
    bits_a = _as_bits(a)
    bits_b = _as_bits(b)
    _check_same_shape(bits_a, bits_b)
    return Bitstream(np.logical_and(bits_a, bits_b).astype(np.uint8), UNIPOLAR)


def or_gate(a: Bitstream | np.ndarray, b: Bitstream | np.ndarray) -> np.ndarray:
    """Bitwise OR (the MAX half of a binary compare-and-swap)."""
    bits_a = _as_bits(a)
    bits_b = _as_bits(b)
    _check_same_shape(bits_a, bits_b)
    return np.logical_or(bits_a, bits_b).astype(np.uint8)


def mux_add(
    streams: Bitstream | np.ndarray, select: np.ndarray, encoding: str = BIPOLAR
) -> Bitstream:
    """Multiplexer addition with an explicit select sequence.

    Args:
        streams: bits of shape ``(n_inputs, ..., N)``.
        select: integer select values of shape ``(..., N)`` or ``(N,)`` in
            ``[0, n_inputs)`` choosing which input drives each output bit.
        encoding: encoding tag for the returned stream.

    Returns:
        The selected stream; its value is the mean of the input values when
        ``select`` is uniform.
    """
    bits = _as_bits(streams)
    if bits.ndim < 2:
        raise ShapeError("mux_add expects shape (n_inputs, ..., N)")
    select = np.asarray(select)
    n_inputs = bits.shape[0]
    if select.shape != bits.shape[1:] and select.shape != (bits.shape[-1],):
        raise ShapeError(
            f"select shape {select.shape} incompatible with streams {bits.shape}"
        )
    if np.any(select < 0) or np.any(select >= n_inputs):
        raise ShapeError(f"select values must lie in [0, {n_inputs})")
    selected = np.take_along_axis(
        bits, np.broadcast_to(select, bits.shape[1:])[None, ...], axis=0
    )[0]
    return Bitstream(selected, encoding)


def mux_scaled_add(
    streams: Bitstream | np.ndarray,
    rng: np.random.Generator,
    encoding: str = BIPOLAR,
) -> Bitstream:
    """Multiplexer addition with a uniformly random select sequence.

    This is the scaled adder used by the prior-work CMOS pooling block: the
    output value is the mean of the inputs, with variance that grows as the
    number of inputs grows (the inaccuracy the paper's sorter-based pooling
    block removes).
    """
    bits = _as_bits(streams)
    if bits.ndim < 2:
        raise ShapeError("mux_scaled_add expects shape (n_inputs, ..., N)")
    select = rng.integers(0, bits.shape[0], size=bits.shape[1:])
    return mux_add(bits, select, encoding)
