"""Elementary stochastic-computing arithmetic.

These are the textbook SC gates summarised in the paper's Fig. 4:

* unipolar multiplication  -> AND gate,
* bipolar multiplication   -> XNOR gate,
* scaled addition          -> multiplexer tree (output is the mean of the
  inputs, i.e. the sum scaled by ``1 / n``),
* OR gate                  -> used inside sorters (max of two bits).

All functions operate on plain bit arrays whose last axis is the stream
axis, on :class:`~repro.sc.bitstream.Bitstream` objects, or on word-packed
:class:`~repro.sc.packed.PackedBitstream` objects.  When any operand is
packed the operation dispatches to the 64-bits-per-word kernels of
:mod:`repro.sc.packed` and returns a packed stream, so hot paths never pay
for byte-per-bit representation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError, ShapeError
from repro.sc.bitstream import Bitstream, _validate_bits
from repro.sc.encoding import BIPOLAR, UNIPOLAR, validate_encoding
from repro.sc.packed import (
    PackedBitstream,
    pack_bits,
    packed_and,
    packed_mux_add,
    packed_or,
    packed_xnor,
)

__all__ = [
    "xnor_multiply",
    "and_multiply",
    "or_gate",
    "mux_add",
    "mux_scaled_add",
]

Operand = Bitstream | PackedBitstream | np.ndarray


def _as_bits(stream: Operand) -> np.ndarray:
    if isinstance(stream, PackedBitstream):
        return stream.unpack()
    if isinstance(stream, Bitstream):
        return stream.bits
    # Raw arrays have not been through a container's domain check yet; the
    # bitwise kernels (unlike the old logical ufuncs) would silently accept
    # values outside {0, 1}.
    arr = np.asarray(stream)
    _validate_bits(arr)
    return arr.astype(np.uint8, copy=False)


def _is_packed(*operands: Operand) -> bool:
    return any(isinstance(op, PackedBitstream) for op in operands)


def _as_words(stream: Operand) -> tuple[np.ndarray, int]:
    """Packed words plus stream length for any operand kind."""
    if isinstance(stream, PackedBitstream):
        return stream.words, stream.length
    if isinstance(stream, Bitstream):
        return pack_bits(stream.bits), stream.length
    bits = np.asarray(stream)
    if bits.ndim == 0:
        raise ShapeError("a bit stream needs at least one (stream) axis")
    _validate_bits(bits)
    return pack_bits(bits), int(bits.shape[-1])


def _binary_words(a: Operand, b: Operand) -> tuple[np.ndarray, np.ndarray, int]:
    words_a, len_a = _as_words(a)
    words_b, len_b = _as_words(b)
    if len_a != len_b:
        raise ShapeError(f"operand stream lengths differ: {len_a} vs {len_b}")
    if words_a.shape != words_b.shape:
        raise ShapeError(
            f"operand shapes differ: {words_a.shape} vs {words_b.shape}"
        )
    return words_a, words_b, len_a


def _check_same_shape(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ShapeError(f"operand shapes differ: {a.shape} vs {b.shape}")


def xnor_multiply(a: Operand, b: Operand) -> Bitstream | PackedBitstream:
    """Bipolar SC multiplication: one XNOR gate per stream bit.

    Packed operands dispatch to the word-parallel kernel and return a
    :class:`PackedBitstream`.
    """
    if _is_packed(a, b):
        words_a, words_b, length = _binary_words(a, b)
        return PackedBitstream._trusted(
            packed_xnor(words_a, words_b, length), length, BIPOLAR
        )
    bits_a = _as_bits(a)
    bits_b = _as_bits(b)
    _check_same_shape(bits_a, bits_b)
    bits = np.bitwise_xor(bits_a, bits_b)
    np.bitwise_xor(bits, 1, out=bits)
    return Bitstream._trusted(bits, BIPOLAR)


def and_multiply(a: Operand, b: Operand) -> Bitstream | PackedBitstream:
    """Unipolar SC multiplication: one AND gate per stream bit."""
    if _is_packed(a, b):
        words_a, words_b, length = _binary_words(a, b)
        return PackedBitstream._trusted(
            packed_and(words_a, words_b), length, UNIPOLAR
        )
    bits_a = _as_bits(a)
    bits_b = _as_bits(b)
    _check_same_shape(bits_a, bits_b)
    return Bitstream._trusted(np.bitwise_and(bits_a, bits_b), UNIPOLAR)


def or_gate(a: Operand, b: Operand) -> np.ndarray | PackedBitstream:
    """Bitwise OR (the MAX half of a binary compare-and-swap).

    Raw-bit operands return a raw ``uint8`` array (legacy behaviour);
    packed operands return a :class:`PackedBitstream`.
    """
    if _is_packed(a, b):
        words_a, words_b, length = _binary_words(a, b)
        # OR is encoding-agnostic (the byte path returns a raw array), so
        # the packed result inherits the operands' encoding tag -- which
        # must therefore be unambiguous.
        encodings = {
            op.encoding
            for op in (a, b)
            if isinstance(op, (Bitstream, PackedBitstream))
        }
        if len(encodings) != 1:
            raise EncodingError(
                f"or_gate operands carry different encodings: {sorted(encodings)}"
            )
        return PackedBitstream._trusted(
            packed_or(words_a, words_b), length, encodings.pop()
        )
    bits_a = _as_bits(a)
    bits_b = _as_bits(b)
    _check_same_shape(bits_a, bits_b)
    return np.bitwise_or(bits_a, bits_b)


def mux_add(
    streams: Operand, select: np.ndarray, encoding: str = BIPOLAR
) -> Bitstream | PackedBitstream:
    """Multiplexer addition with an explicit select sequence.

    Args:
        streams: bits of shape ``(n_inputs, ..., N)`` (or the packed
            equivalent of shape ``(n_inputs, ..., W)``).
        select: integer select values of shape ``(..., N)`` or ``(N,)`` in
            ``[0, n_inputs)`` choosing which input drives each output bit.
        encoding: encoding tag for the returned stream.

    Returns:
        The selected stream; its value is the mean of the input values when
        ``select`` is uniform.
    """
    if isinstance(streams, PackedBitstream):
        if streams.words.ndim < 2:
            raise ShapeError("mux_add expects shape (n_inputs, ..., N)")
        out = packed_mux_add(streams.words, select, streams.length)
        return PackedBitstream._trusted(
            out, streams.length, validate_encoding(encoding)
        )
    bits = _as_bits(streams)
    if bits.ndim < 2:
        raise ShapeError("mux_add expects shape (n_inputs, ..., N)")
    select = np.asarray(select)
    n_inputs = bits.shape[0]
    if select.shape != bits.shape[1:] and select.shape != (bits.shape[-1],):
        raise ShapeError(
            f"select shape {select.shape} incompatible with streams {bits.shape}"
        )
    if np.any(select < 0) or np.any(select >= n_inputs):
        raise ShapeError(f"select values must lie in [0, {n_inputs})")
    selected = np.take_along_axis(
        bits, np.broadcast_to(select, bits.shape[1:])[None, ...], axis=0
    )[0]
    return Bitstream(selected, encoding)


def mux_scaled_add(
    streams: Operand,
    rng: np.random.Generator,
    encoding: str = BIPOLAR,
) -> Bitstream | PackedBitstream:
    """Multiplexer addition with a uniformly random select sequence.

    This is the scaled adder used by the prior-work CMOS pooling block: the
    output value is the mean of the inputs, with variance that grows as the
    number of inputs grows (the inaccuracy the paper's sorter-based pooling
    block removes).
    """
    if isinstance(streams, PackedBitstream):
        if streams.words.ndim < 2:
            raise ShapeError("mux_scaled_add expects shape (n_inputs, ..., N)")
        select = rng.integers(
            0,
            streams.words.shape[0],
            size=streams.value_shape[1:] + (streams.length,),
        )
        return mux_add(streams, select, encoding)
    bits = _as_bits(streams)
    if bits.ndim < 2:
        raise ShapeError("mux_scaled_add expects shape (n_inputs, ..., N)")
    select = rng.integers(0, bits.shape[0], size=bits.shape[1:])
    return mux_add(bits, select, encoding)
