"""Abstract interfaces for random-bit and random-word sources.

Stochastic number generators (SNGs) only need two capabilities from the
underlying hardware RNG: draw a matrix of raw bits, or draw a matrix of
``n_bits``-wide unsigned integer words.  Every concrete source in this
package (AQFP TRNG, LFSR, RNG matrix) implements both so that SNGs and
benchmarks can swap sources freely.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RandomBitSource", "RandomWordSource"]


class RandomBitSource(abc.ABC):
    """A source of (ideally i.i.d. uniform) random bits."""

    @abc.abstractmethod
    def bits(self, shape: tuple[int, ...] | int) -> np.ndarray:
        """Return an array of 0/1 ``uint8`` bits with the requested shape."""

    def reset(self) -> None:  # pragma: no cover - trivial default
        """Reset internal state, if any.  Default: no-op."""


class RandomWordSource(RandomBitSource):
    """A source of unsigned random words of a fixed bit width."""

    def __init__(self, n_bits: int) -> None:
        if n_bits <= 0 or n_bits > 31:
            raise ConfigurationError(f"n_bits must be in [1, 31], got {n_bits}")
        self._n_bits = int(n_bits)

    @property
    def n_bits(self) -> int:
        """Bit width of the words produced by :meth:`words`."""
        return self._n_bits

    @property
    def modulus(self) -> int:
        """Number of distinct word values (``2 ** n_bits``)."""
        return 1 << self._n_bits

    @abc.abstractmethod
    def words(self, shape: tuple[int, ...] | int) -> np.ndarray:
        """Return an array of words in ``[0, 2**n_bits)`` with given shape."""

    def bits(self, shape: tuple[int, ...] | int) -> np.ndarray:
        """Return raw bits by taking the least-significant bit of words."""
        return (self.words(shape) & 1).astype(np.uint8)


def normalize_shape(shape: tuple[int, ...] | int) -> tuple[int, ...]:
    """Normalise a shape argument to a tuple of non-negative ints."""
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    shape = tuple(int(s) for s in shape)
    if any(s < 0 for s in shape):
        raise ConfigurationError(f"shape entries must be >= 0, got {shape}")
    return shape
