"""Model of the AQFP buffer true random number generator.

An AQFP buffer whose input current is held at zero resolves to logic 0 or 1
purely by thermal noise when the excitation current ramps the potential from
a single well to a double well (paper Fig. 7).  The paper exploits this to
build a two-junction true RNG that emits one independent random bit per
clock cycle.

The software model is a Bernoulli source.  Two imperfection knobs are
provided so that sensitivity studies (and the randomness-quality tests) can
exercise non-ideal devices:

* ``bias`` -- deviation of ``P(bit = 1)`` from 0.5 caused by residual input
  current or asymmetric junction critical currents.
* ``flip_persistence`` -- probability that a bit simply repeats the previous
  output instead of being re-drawn, modelling insufficient reset between
  excitation cycles (introduces serial correlation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng.base import RandomWordSource, normalize_shape

__all__ = ["AqfpTrueRng"]

#: Josephson junctions per 1-bit AQFP TRNG (a single buffer).
JJ_PER_TRNG_BIT = 2


class AqfpTrueRng(RandomWordSource):
    """Thermal-noise true RNG built from AQFP buffers.

    Args:
        n_bits: width of the random words assembled from ``n_bits`` unit TRNGs.
        seed: seed for the underlying software entropy source.
        bias: ``P(bit = 1) - 0.5`` of each unit TRNG.  Must lie in (-0.5, 0.5).
        flip_persistence: probability that a unit TRNG repeats its previous
            output instead of drawing a fresh bit.  Zero for an ideal device.
    """

    def __init__(
        self,
        n_bits: int = 10,
        seed: int | None = None,
        *,
        bias: float = 0.0,
        flip_persistence: float = 0.0,
    ) -> None:
        super().__init__(n_bits)
        if not -0.5 < bias < 0.5:
            raise ConfigurationError(f"bias must be in (-0.5, 0.5), got {bias}")
        if not 0.0 <= flip_persistence < 1.0:
            raise ConfigurationError(
                f"flip_persistence must be in [0, 1), got {flip_persistence}"
            )
        self._seed = seed
        self._bias = float(bias)
        self._persistence = float(flip_persistence)
        self._rng = np.random.default_rng(seed)
        self._last_bits: np.ndarray | None = None

    @property
    def p_one(self) -> float:
        """Probability that a unit TRNG outputs logic 1."""
        return 0.5 + self._bias

    @property
    def jj_count(self) -> int:
        """Josephson junctions used by the ``n_bits`` unit TRNGs."""
        return JJ_PER_TRNG_BIT * self.n_bits

    def reset(self) -> None:
        """Restart the entropy source from the original seed."""
        self._rng = np.random.default_rng(self._seed)
        self._last_bits = None

    def bits(self, shape: tuple[int, ...] | int) -> np.ndarray:
        """Draw raw TRNG bits of the requested shape."""
        shape = normalize_shape(shape)
        fresh = (self._rng.random(shape) < self.p_one).astype(np.uint8)
        if self._persistence == 0.0:
            return fresh
        return self._apply_persistence(fresh)

    def _apply_persistence(self, fresh: np.ndarray) -> np.ndarray:
        """Blend fresh bits with the previous draw along the last axis."""
        flat = fresh.reshape(-1, fresh.shape[-1]) if fresh.ndim > 1 else fresh[None, :]
        out = flat.copy()
        hold = self._rng.random(flat.shape) < self._persistence
        for col in range(1, flat.shape[-1]):
            out[:, col] = np.where(hold[:, col], out[:, col - 1], flat[:, col])
        result = out.reshape(fresh.shape)
        self._last_bits = result
        return result

    def words(self, shape: tuple[int, ...] | int) -> np.ndarray:
        """Assemble ``n_bits``-wide words from independent unit TRNGs.

        The hardware assembles one word per clock cycle from ``n_bits``
        parallel unit TRNGs; the software equivalent draws a bit plane per
        word bit and packs them.
        """
        shape = normalize_shape(shape)
        planes = self.bits(shape + (self.n_bits,))
        weights = (1 << np.arange(self.n_bits, dtype=np.int64))
        return (planes.astype(np.int64) * weights).sum(axis=-1)
