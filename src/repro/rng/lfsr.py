"""Linear-feedback shift register pseudo-RNG (CMOS baseline).

CMOS stochastic-computing designs almost universally generate their random
comparison words with maximal-length Fibonacci LFSRs, and the paper's CMOS
baseline (SC-DCNN) does the same.  The LFSR here is bit-accurate: it can be
stepped one word per clock cycle and reproduces the full ``2**n - 1`` period
of a maximal-length polynomial.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng.base import RandomWordSource, normalize_shape

__all__ = ["Lfsr", "DEFAULT_TAPS"]

#: Maximal-length tap sets (1-indexed from the output bit) for common widths.
#: Taken from standard LFSR tap tables (Xilinx XAPP052).
DEFAULT_TAPS: dict[int, tuple[int, ...]] = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    24: (24, 23, 22, 17),
    31: (31, 28),
}


class Lfsr(RandomWordSource):
    """Fibonacci LFSR producing ``n_bits``-wide pseudo-random words.

    Args:
        n_bits: register width.  Must have a known maximal-length tap set.
        seed: initial register contents; must be non-zero modulo ``2**n_bits``.
        taps: optional explicit tap positions (1-indexed, MSB = ``n_bits``).
    """

    def __init__(
        self,
        n_bits: int = 10,
        seed: int = 1,
        taps: tuple[int, ...] | None = None,
    ) -> None:
        super().__init__(n_bits)
        if taps is None:
            if n_bits not in DEFAULT_TAPS:
                raise ConfigurationError(
                    f"no default maximal-length taps for width {n_bits}; "
                    "pass taps= explicitly"
                )
            taps = DEFAULT_TAPS[n_bits]
        if any(t < 1 or t > n_bits for t in taps):
            raise ConfigurationError(f"tap positions must be in [1, {n_bits}]")
        state = int(seed) % self.modulus
        if state == 0:
            raise ConfigurationError("LFSR seed must be non-zero")
        self._initial_state = state
        self._state = state
        self._taps = tuple(sorted(set(taps), reverse=True))

    @property
    def taps(self) -> tuple[int, ...]:
        """Feedback tap positions (1-indexed)."""
        return self._taps

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    @property
    def period(self) -> int:
        """Sequence period for a maximal-length configuration."""
        return self.modulus - 1

    def reset(self) -> None:
        """Restore the initial seed state."""
        self._state = self._initial_state

    def step(self) -> int:
        """Advance one clock cycle and return the new register value."""
        feedback = 0
        for tap in self._taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        self._state = ((self._state << 1) | feedback) & (self.modulus - 1)
        return self._state

    def words(self, shape: tuple[int, ...] | int) -> np.ndarray:
        """Return consecutive register values reshaped to ``shape``."""
        shape = normalize_shape(shape)
        count = int(np.prod(shape)) if shape else 1
        out = np.empty(count, dtype=np.int64)
        for i in range(count):
            out[i] = self.step()
        return out.reshape(shape)

    def sequence(self, length: int) -> np.ndarray:
        """Return ``length`` consecutive words without reshaping."""
        return self.words((length,))
