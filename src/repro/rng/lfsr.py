"""Linear-feedback shift register pseudo-RNG (CMOS baseline).

CMOS stochastic-computing designs almost universally generate their random
comparison words with maximal-length Fibonacci LFSRs, and the paper's CMOS
baseline (SC-DCNN) does the same.  The LFSR here is bit-accurate: it can be
stepped one word per clock cycle and reproduces the full ``2**n - 1`` period
of a maximal-length polynomial.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng.base import RandomWordSource, normalize_shape

__all__ = ["Lfsr", "DEFAULT_TAPS"]

#: Maximal-length tap sets (1-indexed from the output bit) for common widths.
#: Taken from standard LFSR tap tables (Xilinx XAPP052).
DEFAULT_TAPS: dict[int, tuple[int, ...]] = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    24: (24, 23, 22, 17),
    31: (31, 28),
}


class Lfsr(RandomWordSource):
    """Fibonacci LFSR producing ``n_bits``-wide pseudo-random words.

    Args:
        n_bits: register width.  Must have a known maximal-length tap set.
        seed: initial register contents; must be non-zero modulo ``2**n_bits``.
        taps: optional explicit tap positions (1-indexed, MSB = ``n_bits``).
    """

    def __init__(
        self,
        n_bits: int = 10,
        seed: int = 1,
        taps: tuple[int, ...] | None = None,
    ) -> None:
        super().__init__(n_bits)
        if taps is None:
            if n_bits not in DEFAULT_TAPS:
                raise ConfigurationError(
                    f"no default maximal-length taps for width {n_bits}; "
                    "pass taps= explicitly"
                )
            taps = DEFAULT_TAPS[n_bits]
        if any(t < 1 or t > n_bits for t in taps):
            raise ConfigurationError(f"tap positions must be in [1, {n_bits}]")
        state = int(seed) % self.modulus
        if state == 0:
            raise ConfigurationError("LFSR seed must be non-zero")
        self._initial_state = state
        self._state = state
        self._taps = tuple(sorted(set(taps), reverse=True))

    @property
    def taps(self) -> tuple[int, ...]:
        """Feedback tap positions (1-indexed)."""
        return self._taps

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    @property
    def period(self) -> int:
        """Sequence period for a maximal-length configuration."""
        return self.modulus - 1

    def reset(self) -> None:
        """Restore the initial seed state."""
        self._state = self._initial_state

    def step(self) -> int:
        """Advance one clock cycle and return the new register value."""
        feedback = 0
        for tap in self._taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        self._state = ((self._state << 1) | feedback) & (self.modulus - 1)
        return self._state

    def words(self, shape: tuple[int, ...] | int) -> np.ndarray:
        """Return consecutive register values reshaped to ``shape``.

        Bit-identical to calling :meth:`step` once per word (the register
        ends in the same state), but generated in bulk: the feedback-bit
        sequence satisfies the linear recurrence ``u_k = XOR(u[k - tap])``
        over GF(2), which is evaluated block-wise with NumPy (see
        :meth:`_feedback_bits`), and the register values are sliding
        ``n_bits`` windows of that sequence.
        """
        shape = normalize_shape(shape)
        count = int(np.prod(shape)) if shape else 1
        if count == 0:
            return np.empty(shape, dtype=np.int64)
        n = self._n_bits
        u = self._feedback_bits(count)
        weights = (1 << np.arange(n - 1, -1, -1)).astype(np.int64)
        windows = np.lib.stride_tricks.sliding_window_view(u, n)
        # Blocked window-weight products: the matmul upcasts its uint8
        # operand to int64, so doing all ``count`` windows at once would
        # transiently allocate ``8 n`` bytes per word -- an order of
        # magnitude above the output itself.  Fixed-size blocks keep the
        # transient bounded while staying fully vectorised.
        states = np.empty(count, dtype=np.int64)
        block = 4096
        for start in range(0, count, block):
            stop = min(count, start + block)
            states[start:stop] = windows[1 + start : 1 + stop] @ weights
        self._state = int(states[-1])
        return states.reshape(shape)

    def _feedback_bits(self, count: int) -> np.ndarray:
        """The register bit sequence: seed bits then ``count`` feedback bits.

        Returns a ``uint8`` array ``u`` of length ``n_bits + count`` where
        ``u[:n_bits]`` holds the current register (MSB first) and every
        later entry is the feedback bit shifted in on one clock.  The
        register after ``t`` further steps is the window
        ``u[t : t + n_bits]`` read MSB first.

        Blocks of up to ``min(taps)`` bits have no intra-block dependency,
        so they are produced with one vectorised XOR per tap.  To keep the
        block count logarithmic for long draws, the connection polynomial
        is repeatedly squared (over GF(2), squaring just doubles every tap
        lag) once enough history exists: each squaring doubles the block
        size, so generation settles into O(log count) NumPy passes.
        """
        n = self._n_bits
        total = n + count
        u = np.empty(total, dtype=np.uint8)
        u[:n] = (self._state >> np.arange(n - 1, -1, -1)) & 1
        # Plain-int lag bookkeeping: the loop below runs O(log count)
        # iterations whose control arithmetic is tiny, so ndarray min/max
        # dispatch would dominate short draws (the word-direct SNG calls
        # this once per bounded chunk).
        lags = [int(t) for t in self._taps]
        min_lag = min(lags)
        max_lag = max(lags)
        # The recurrence with the original lags holds from index n onward; a
        # squared recurrence (a polynomial multiple of the original) holds
        # from the previous threshold plus the previous maximum lag.
        valid_from = n
        filled = n
        while filled < total:
            while min_lag < total - filled:
                if valid_from + max_lag > filled or 2 * max_lag > filled:
                    break
                valid_from += max_lag
                lags = [lag * 2 for lag in lags]
                min_lag *= 2
                max_lag *= 2
            block = min(min_lag, total - filled)
            segment = u[filled - lags[0] : filled - lags[0] + block].copy()
            for lag in lags[1:]:
                segment ^= u[filled - lag : filled - lag + block]
            u[filled : filled + block] = segment
            filled += block
        return u

    def sequence(self, length: int) -> np.ndarray:
        """Return ``length`` consecutive words without reshaping."""
        return self.words((length,))
