"""Randomness-quality statistics for RNG sources.

These metrics support Fig. 7(b) (output distribution of the AQFP TRNG) and
the design claim that the shared RNG matrix keeps inter-word correlation
negligible.  They are intentionally simple, dependency-light estimators.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "bit_bias",
    "serial_correlation",
    "chi_square_uniformity",
    "pairwise_word_correlation",
]


def bit_bias(bits: np.ndarray) -> float:
    """Return ``mean(bits) - 0.5`` -- zero for an unbiased source."""
    bits = np.asarray(bits)
    if bits.size == 0:
        raise ShapeError("bit_bias requires a non-empty array")
    return float(bits.mean() - 0.5)


def serial_correlation(bits: np.ndarray, lag: int = 1) -> float:
    """Pearson correlation between a bit sequence and its ``lag``-shifted self."""
    bits = np.asarray(bits, dtype=np.float64).ravel()
    if lag <= 0:
        raise ShapeError(f"lag must be positive, got {lag}")
    if bits.size <= lag + 1:
        raise ShapeError("sequence too short for requested lag")
    a = bits[:-lag]
    b = bits[lag:]
    sa = a.std()
    sb = b.std()
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def chi_square_uniformity(words: np.ndarray, modulus: int, n_bins: int = 16) -> float:
    """Chi-square statistic of word values against a uniform distribution.

    The statistic is normalised by its degrees of freedom so that values
    around 1 indicate consistency with uniformity.
    """
    words = np.asarray(words).ravel()
    if words.size == 0:
        raise ShapeError("chi_square_uniformity requires a non-empty array")
    if modulus < n_bins:
        n_bins = int(modulus)
    edges = np.linspace(0, modulus, n_bins + 1)
    counts, _ = np.histogram(words, bins=edges)
    expected = words.size / n_bins
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    dof = n_bins - 1
    return chi2 / dof


def pairwise_word_correlation(words: np.ndarray) -> np.ndarray:
    """Absolute Pearson correlation between every pair of word sequences.

    Args:
        words: array of shape ``(cycles, n_words)``.

    Returns:
        ``(n_words, n_words)`` matrix of absolute correlations with ones on
        the diagonal.
    """
    words = np.asarray(words, dtype=np.float64)
    if words.ndim != 2:
        raise ShapeError(f"expected 2-D (cycles, n_words) array, got {words.shape}")
    if words.shape[0] < 3:
        raise ShapeError("need at least 3 cycles to estimate correlations")
    centered = words - words.mean(axis=0, keepdims=True)
    std = centered.std(axis=0, keepdims=True)
    std[std == 0.0] = 1.0
    normed = centered / std
    corr = normed.T @ normed / words.shape[0]
    np.fill_diagonal(corr, 1.0)
    return np.abs(corr)
