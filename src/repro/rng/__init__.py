"""Random-bit and random-number sources.

The paper's key enabling observation is that a single AQFP buffer biased at
``I_in = 0`` is a true random number generator (two Josephson junctions per
random bit), which removes the dominant RNG overhead of CMOS stochastic
computing.  This subpackage models:

* :class:`~repro.rng.aqfp_trng.AqfpTrueRng` -- the thermal-noise buffer TRNG,
  including optional bias and correlation imperfections.
* :class:`~repro.rng.lfsr.Lfsr` -- the linear-feedback shift register used by
  the CMOS baseline SNGs.
* :class:`~repro.rng.matrix.RngMatrix` -- the paper's ``N x N`` RNG matrix in
  which every unit TRNG is shared by four N-bit random words (Fig. 8).
* :mod:`~repro.rng.quality` -- randomness-quality statistics used to compare
  sources (bias, serial correlation, chi-square uniformity).
"""

from repro.rng.aqfp_trng import AqfpTrueRng
from repro.rng.base import RandomBitSource, RandomWordSource
from repro.rng.lfsr import DEFAULT_TAPS, Lfsr
from repro.rng.matrix import RngMatrix
from repro.rng.quality import (
    bit_bias,
    chi_square_uniformity,
    pairwise_word_correlation,
    serial_correlation,
)

__all__ = [
    "RandomBitSource",
    "RandomWordSource",
    "AqfpTrueRng",
    "Lfsr",
    "DEFAULT_TAPS",
    "RngMatrix",
    "bit_bias",
    "serial_correlation",
    "chi_square_uniformity",
    "pairwise_word_correlation",
]
