"""The paper's shared true-RNG matrix (Fig. 8).

An ``N x N`` array of unit TRNGs, each followed by a splitter, yields ``4N``
distinct ``N``-bit random words per clock cycle: each row read left-to-right
and right-to-left, and each column read top-to-bottom and bottom-to-top.
Any two of those words share at most a single unit TRNG bit, so the
correlation between words stays negligible while the JJ cost per word drops
by roughly 4x compared with dedicating a private TRNG column to every SNG.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng.aqfp_trng import JJ_PER_TRNG_BIT, AqfpTrueRng

__all__ = ["RngMatrix"]

#: Josephson junctions per splitter cell (one AQFP buffer-derived splitter).
JJ_PER_SPLITTER = 2


class RngMatrix:
    """Shared ``size x size`` matrix of unit TRNGs providing ``4 * size`` words.

    Args:
        size: matrix dimension ``N``; also the bit width of each output word.
        seed: seed of the underlying :class:`AqfpTrueRng` entropy model.
        bias: per-unit TRNG bias forwarded to :class:`AqfpTrueRng`.
    """

    def __init__(self, size: int, seed: int | None = None, *, bias: float = 0.0) -> None:
        if size < 2:
            raise ConfigurationError(f"matrix size must be >= 2, got {size}")
        self._size = int(size)
        self._trng = AqfpTrueRng(n_bits=size, seed=seed, bias=bias)

    @property
    def size(self) -> int:
        """Matrix dimension (and output word bit width)."""
        return self._size

    @property
    def n_words(self) -> int:
        """Number of distinct words produced per cycle (``4 * size``)."""
        return 4 * self._size

    @property
    def word_bits(self) -> int:
        """Bit width of each output word."""
        return self._size

    @property
    def jj_count(self) -> int:
        """JJ cost of the matrix: one TRNG plus one splitter per cell."""
        cells = self._size * self._size
        return cells * (JJ_PER_TRNG_BIT + JJ_PER_SPLITTER)

    def jj_count_unshared(self) -> int:
        """JJ cost if each of the ``4N`` words used a private TRNG column."""
        return self.n_words * self._size * JJ_PER_TRNG_BIT

    def sharing_gain(self) -> float:
        """JJ saving factor of the shared matrix versus private TRNGs."""
        return self.jj_count_unshared() / self.jj_count

    def reset(self) -> None:
        """Reset the underlying entropy source."""
        self._trng.reset()

    def draw_matrix(self, cycles: int) -> np.ndarray:
        """Draw raw matrix bits for ``cycles`` clock cycles.

        Returns:
            ``uint8`` array of shape ``(cycles, size, size)``.
        """
        if cycles <= 0:
            raise ConfigurationError(f"cycles must be positive, got {cycles}")
        return self._trng.bits((cycles, self._size, self._size))

    def words(self, cycles: int) -> np.ndarray:
        """Return the ``4N`` shared words for each of ``cycles`` cycles.

        Word indices follow Fig. 8's four read directions:

        * ``0 .. N-1``       -- row ``i`` read left-to-right,
        * ``N .. 2N-1``      -- row ``i`` read right-to-left,
        * ``2N .. 3N-1``     -- column ``j`` read top-to-bottom,
        * ``3N .. 4N-1``     -- column ``j`` read bottom-to-top.

        Returns:
            ``int64`` array of shape ``(cycles, 4 * size)`` with values in
            ``[0, 2**size)``.
        """
        grid = self.draw_matrix(cycles)
        weights = (1 << np.arange(self._size, dtype=np.int64))

        rows_fwd = (grid.astype(np.int64) * weights).sum(axis=2)
        rows_rev = (grid[:, :, ::-1].astype(np.int64) * weights).sum(axis=2)
        cols = np.swapaxes(grid, 1, 2)
        cols_fwd = (cols.astype(np.int64) * weights).sum(axis=2)
        cols_rev = (cols[:, :, ::-1].astype(np.int64) * weights).sum(axis=2)

        return np.concatenate([rows_fwd, rows_rev, cols_fwd, cols_rev], axis=1)

    def shared_bits(self, word_a: int, word_b: int) -> int:
        """Number of unit TRNG cells shared by two output words.

        Words derived from the same row (forward and reverse reads) share all
        ``N`` cells; a row word and a column word share exactly one cell; two
        distinct rows or two distinct columns share none.
        """
        for w in (word_a, word_b):
            if not 0 <= w < self.n_words:
                raise ConfigurationError(
                    f"word index {w} out of range [0, {self.n_words})"
                )
        if word_a == word_b:
            return self._size
        group_a, idx_a = divmod(word_a, self._size)
        group_b, idx_b = divmod(word_b, self._size)
        a_is_row = group_a in (0, 1)
        b_is_row = group_b in (0, 1)
        if a_is_row == b_is_row:
            return self._size if idx_a == idx_b else 0
        return 1
