"""AQFP standard-cell library.

The library mirrors the minimalist-design cell set of Takeuchi et al. (2015)
that the paper builds on: every cell is derived from the basic
double-junction buffer, and the 3-input majority gate is the natural
combinational primitive (AND and OR are majority gates with one input tied
to a constant).  Each spec records the junction count used by the energy
model and the number of logic inputs used by netlist validation.

Junction counts follow the standard AQFP cell accounting: 2 JJ per buffer
branch, so a 3-input gate (three input branches merged into one output
transformer) costs 6 JJ, and constants cost 2 JJ.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import NetlistError

__all__ = ["CellType", "CellSpec", "CELL_LIBRARY", "cell_spec"]


class CellType(enum.Enum):
    """Primitive AQFP cell types available to netlists."""

    INPUT = "input"
    BUFFER = "buffer"
    INVERTER = "inverter"
    CONST_0 = "const_0"
    CONST_1 = "const_1"
    SPLITTER = "splitter"
    MAJ3 = "maj3"
    AND2 = "and2"
    OR2 = "or2"
    NAND2 = "nand2"
    NOR2 = "nor2"


@dataclass(frozen=True)
class CellSpec:
    """Static properties of a primitive cell.

    Attributes:
        cell_type: the cell identifier.
        n_inputs: number of logic inputs the cell consumes.
        jj_count: Josephson junctions in the cell.
        max_fanout: how many sinks the cell output may drive directly.
        description: one-line description for reports.
    """

    cell_type: CellType
    n_inputs: int
    jj_count: int
    max_fanout: int
    description: str


#: The standard cell library used by every netlist in this package.
CELL_LIBRARY: dict[CellType, CellSpec] = {
    CellType.INPUT: CellSpec(CellType.INPUT, 0, 0, 1, "primary input (no JJ cost)"),
    CellType.BUFFER: CellSpec(CellType.BUFFER, 1, 2, 1, "double-JJ buffer / pipeline stage"),
    CellType.INVERTER: CellSpec(
        CellType.INVERTER, 1, 2, 1, "buffer with negated output transformer coupling"
    ),
    CellType.CONST_0: CellSpec(
        CellType.CONST_0, 0, 2, 1, "constant 0 from asymmetric excitation flux"
    ),
    CellType.CONST_1: CellSpec(
        CellType.CONST_1, 0, 2, 1, "constant 1 from asymmetric excitation flux"
    ),
    CellType.SPLITTER: CellSpec(
        CellType.SPLITTER, 1, 4, 3, "1-to-3 splitter (buffer with three output branches)"
    ),
    CellType.MAJ3: CellSpec(CellType.MAJ3, 3, 6, 1, "3-input majority gate"),
    CellType.AND2: CellSpec(
        CellType.AND2, 2, 6, 1, "2-input AND (majority with constant-0 branch)"
    ),
    CellType.OR2: CellSpec(
        CellType.OR2, 2, 6, 1, "2-input OR (majority with constant-1 branch)"
    ),
    CellType.NAND2: CellSpec(
        CellType.NAND2, 2, 6, 1, "2-input NAND (inverted-input majority with constant)"
    ),
    CellType.NOR2: CellSpec(
        CellType.NOR2, 2, 6, 1, "2-input NOR (inverted-input majority with constant)"
    ),
}

#: Cells that contribute one logic level (clock phase) to path depth.
LOGIC_CELLS: frozenset[CellType] = frozenset(
    {
        CellType.BUFFER,
        CellType.INVERTER,
        CellType.SPLITTER,
        CellType.MAJ3,
        CellType.AND2,
        CellType.OR2,
        CellType.NAND2,
        CellType.NOR2,
        CellType.CONST_0,
        CellType.CONST_1,
    }
)


def cell_spec(cell_type: CellType) -> CellSpec:
    """Look up a cell spec, raising :class:`NetlistError` for unknown types."""
    try:
        return CELL_LIBRARY[cell_type]
    except KeyError as exc:  # pragma: no cover - defensive
        raise NetlistError(f"unknown cell type {cell_type!r}") from exc
