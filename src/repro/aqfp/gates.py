"""Macro builders on top of the AQFP netlist.

The primitives of :mod:`repro.aqfp.cells` are single gates; the paper's
blocks are built from a few recurring macros:

* XNOR (the bipolar SC multiplier): ``(a AND b) OR (NOT a AND NOT b)``,
  three logic levels in AQFP.
* the binary compare-and-swap (one AND + one OR), the unit of every sorting
  network.
* full bitonic sorter / merger netlists generated from a
  :class:`~repro.sorting.network.ComparatorNetwork`.
* the majority chain used by the categorization block.
* an n-bit magnitude comparator (for SNGs).

Every builder works on an existing :class:`~repro.aqfp.netlist.Netlist` so
blocks can compose them freely.
"""

from __future__ import annotations

from repro.aqfp.cells import CellType
from repro.aqfp.netlist import Netlist
from repro.errors import NetlistError
from repro.sorting.network import ComparatorNetwork

__all__ = [
    "add_xnor",
    "add_compare_swap",
    "add_sorter",
    "add_majority_chain",
    "add_magnitude_comparator",
    "build_sorter_netlist",
    "build_majority_chain_netlist",
]


def add_xnor(netlist: Netlist, a: int, b: int, name: str = "xnor") -> int:
    """Add a 2-input XNOR macro and return the id of its output node.

    Built as ``OR(AND(a, b), AND(NOT a, NOT b))``: two inverters, two AND
    gates and one OR gate (three logic levels before balancing).
    """
    not_a = netlist.add_gate(CellType.INVERTER, (a,), f"{name}.na")
    not_b = netlist.add_gate(CellType.INVERTER, (b,), f"{name}.nb")
    both = netlist.add_gate(CellType.AND2, (a, b), f"{name}.and_hi")
    neither = netlist.add_gate(CellType.AND2, (not_a, not_b), f"{name}.and_lo")
    return netlist.add_gate(CellType.OR2, (both, neither), f"{name}.or")


def add_compare_swap(
    netlist: Netlist, a: int, b: int, name: str = "cas"
) -> tuple[int, int]:
    """Add a binary compare-and-swap; returns ``(max_node, min_node)``."""
    hi = netlist.add_gate(CellType.OR2, (a, b), f"{name}.max")
    lo = netlist.add_gate(CellType.AND2, (a, b), f"{name}.min")
    return hi, lo


def add_sorter(
    netlist: Netlist, lane_nodes: list[int], network: ComparatorNetwork, name: str = "sorter"
) -> list[int]:
    """Instantiate a comparator network over existing lane nodes.

    Args:
        netlist: netlist to extend.
        lane_nodes: node ids currently driving each lane (length = width).
        network: the comparator network to instantiate.
        name: prefix for gate names.

    Returns:
        Node ids driving each lane after the network.
    """
    if len(lane_nodes) != network.width:
        raise NetlistError(
            f"{len(lane_nodes)} lane nodes for a width-{network.width} network"
        )
    lanes = list(lane_nodes)
    for index, comp in enumerate(network.comparators):
        hi, lo = add_compare_swap(
            netlist, lanes[comp.high], lanes[comp.low], f"{name}.c{index}"
        )
        lanes[comp.high] = hi
        lanes[comp.low] = lo
    return lanes


def add_majority_chain(
    netlist: Netlist, input_nodes: list[int], name: str = "majchain"
) -> int:
    """Add the paper's majority-chain reduction and return its output node.

    ``Maj(x0, x1, x2, x3, x4, ...)`` is factorised as
    ``Maj(...Maj(Maj(x0, x1, x2), x3, x4)..., x_{k-2}, x_{k-1})`` --
    one 3-input majority gate per pair of additional inputs.  If the input
    count is even, a constant-0 input pads the final gate (which biases the
    chain negligibly for long chains, mirroring the hardware).
    """
    if not input_nodes:
        raise NetlistError("majority chain needs at least one input")
    nodes = list(input_nodes)
    if len(nodes) == 1:
        return netlist.add_gate(CellType.BUFFER, (nodes[0],), f"{name}.buf")
    if len(nodes) == 2:
        pad = netlist.add_gate(CellType.CONST_0, (), f"{name}.pad")
        return netlist.add_gate(CellType.MAJ3, (nodes[0], nodes[1], pad), f"{name}.m0")
    acc = netlist.add_gate(CellType.MAJ3, tuple(nodes[:3]), f"{name}.m0")
    remaining = nodes[3:]
    index = 1
    while remaining:
        if len(remaining) >= 2:
            a, b = remaining[0], remaining[1]
            remaining = remaining[2:]
        else:
            a = remaining[0]
            b = netlist.add_gate(CellType.CONST_0, (), f"{name}.pad{index}")
            remaining = []
        acc = netlist.add_gate(CellType.MAJ3, (acc, a, b), f"{name}.m{index}")
        index += 1
    return acc


def add_magnitude_comparator(
    netlist: Netlist, value_bits: list[int], random_bits: list[int], name: str = "cmp"
) -> int:
    """Add an n-bit ``random < value`` comparator; returns the output node.

    Implemented as the standard ripple structure evaluated from the least
    significant bit upwards: ``lt = (NOT r_i AND v_i) OR (eq_i AND lt)`` with
    ``eq_i = XNOR(r_i, v_i)``, so a more significant bit always dominates.
    The bit lists are ordered MSB first.
    """
    if len(value_bits) != len(random_bits) or not value_bits:
        raise NetlistError("comparator needs equally sized, non-empty bit vectors")
    less_than: int | None = None
    pairs = list(zip(value_bits, random_bits))
    for position, (v_bit, r_bit) in enumerate(reversed(pairs)):
        tag = f"{name}.b{position}"
        not_r = netlist.add_gate(CellType.INVERTER, (r_bit,), f"{tag}.nr")
        strictly = netlist.add_gate(CellType.AND2, (not_r, v_bit), f"{tag}.lt")
        if less_than is None:
            less_than = strictly
            continue
        equal = add_xnor(netlist, v_bit, r_bit, f"{tag}.eq")
        carry = netlist.add_gate(CellType.AND2, (equal, less_than), f"{tag}.carry")
        less_than = netlist.add_gate(CellType.OR2, (strictly, carry), f"{tag}.or")
    assert less_than is not None
    return less_than


def build_sorter_netlist(network: ComparatorNetwork, name: str = "bitonic") -> Netlist:
    """Build a standalone netlist for a comparator network.

    Primary inputs are the lanes; primary outputs are the sorted lanes.
    """
    netlist = Netlist(name)
    lane_nodes = [netlist.add_input(f"in{i}") for i in range(network.width)]
    sorted_nodes = add_sorter(netlist, lane_nodes, network, name)
    netlist.set_outputs(sorted_nodes)
    return netlist


def build_majority_chain_netlist(n_inputs: int, name: str = "categorize") -> Netlist:
    """Build a standalone majority-chain netlist with ``n_inputs`` inputs."""
    if n_inputs <= 0:
        raise NetlistError(f"n_inputs must be positive, got {n_inputs}")
    netlist = Netlist(name)
    inputs = [netlist.add_input(f"in{i}") for i in range(n_inputs)]
    out = add_majority_chain(netlist, inputs, name)
    netlist.set_outputs([out])
    return netlist
