"""Four-phase clocking analysis.

Every AQFP gate occupies one phase of the four-phase AC excitation clock
(paper Fig. 3), so a balanced netlist of logic depth ``d`` has a fill
latency of ``d`` phases and then produces one new result per excitation
cycle.  :func:`analyze_clocking` turns a netlist plus a technology corner
into latency / throughput numbers, and reports how the deep pipeline
interacts with a stochastic stream of length ``N`` (the stream hides the
fill latency, which is the paper's compatibility argument for SC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aqfp.netlist import Netlist
from repro.aqfp.technology import AqfpTechnology
from repro.errors import SimulationError

__all__ = ["ClockingReport", "analyze_clocking"]


@dataclass(frozen=True)
class ClockingReport:
    """Latency / throughput summary for one netlist.

    Attributes:
        phases: pipeline depth in clock phases.
        fill_latency_s: time from first input to first valid output.
        cycle_time_s: time between consecutive results once the pipe is full.
        stream_length: stochastic stream length assumed for stream metrics.
        stream_latency_s: time to push a whole stream through the block.
        utilization: fraction of cycles doing useful work for one stream
            (``N / (N + phases/phases_per_cycle)``).
    """

    phases: int
    fill_latency_s: float
    cycle_time_s: float
    stream_length: int
    stream_latency_s: float
    utilization: float


def analyze_clocking(
    netlist: Netlist,
    technology: AqfpTechnology,
    stream_length: int = 1024,
    require_balanced: bool = True,
) -> ClockingReport:
    """Compute the clocking report of a netlist.

    Args:
        netlist: the (preferably balanced) netlist to analyse.
        technology: AQFP technology constants.
        stream_length: stochastic stream length for stream-level metrics.
        require_balanced: raise if the netlist is not phase aligned, because
            latency numbers for an unbalanced netlist are not meaningful in
            AQFP.
    """
    if stream_length <= 0:
        raise SimulationError(f"stream_length must be positive, got {stream_length}")
    if require_balanced and not netlist.is_phase_aligned():
        raise SimulationError(
            f"netlist {netlist.name!r} is not phase aligned; run balance_netlist first"
        )
    phases = netlist.logic_depth()
    fill_latency = technology.latency_s(phases)
    cycle_time = technology.cycle_time_s
    fill_cycles = phases / technology.phases_per_cycle
    stream_latency = fill_latency + stream_length * cycle_time
    utilization = stream_length / (stream_length + fill_cycles)
    return ClockingReport(
        phases=phases,
        fill_latency_s=fill_latency,
        cycle_time_s=cycle_time,
        stream_length=stream_length,
        stream_latency_s=stream_latency,
        utilization=utilization,
    )
