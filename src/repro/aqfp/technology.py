"""AQFP technology constants.

The energy model follows the paper's accounting style: every Josephson
junction in an AC-powered AQFP cell dissipates a fixed (adiabatic) switching
energy each excitation cycle, and each logic level occupies one phase of a
four-phase AC clock.  Both constants are parameters of
:class:`AqfpTechnology`, so sensitivity studies can sweep them; the defaults
correspond to the 10 kA/cm2 AIST process operated at 5 GHz that the paper's
prototype chip uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AqfpTechnology"]

#: Adiabatic switching energy per junction per cycle, in joules.
#: Measured AQFP dissipation is of order zeptojoules per junction at
#: gigahertz excitation (Takeuchi et al. 2013/2014); 2 zJ per JJ per cycle
#: reproduces the order of magnitude of the paper's block-level numbers.
DEFAULT_ENERGY_PER_JJ_J = 2.0e-21

#: Default AC excitation (clock) frequency in hertz.
DEFAULT_CLOCK_HZ = 5.0e9

#: Phases per excitation cycle in the standard AQFP clocking scheme (Fig. 3).
DEFAULT_PHASES_PER_CYCLE = 4


@dataclass(frozen=True)
class AqfpTechnology:
    """Technology corner for AQFP cost estimation.

    Attributes:
        energy_per_jj_j: switching energy per JJ per excitation cycle (J).
        clock_hz: AC excitation frequency (Hz).
        phases_per_cycle: clock phases per excitation cycle.
        cooling_overhead: multiplicative wall-plug penalty for 4.2 K cooling;
            1.0 reports pure device energy (the paper's headline numbers),
            ~1000 reports energy including cryocooler overhead.
    """

    energy_per_jj_j: float = DEFAULT_ENERGY_PER_JJ_J
    clock_hz: float = DEFAULT_CLOCK_HZ
    phases_per_cycle: int = DEFAULT_PHASES_PER_CYCLE
    cooling_overhead: float = 1.0

    def __post_init__(self) -> None:
        if self.energy_per_jj_j <= 0:
            raise ConfigurationError("energy_per_jj_j must be positive")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")
        if self.phases_per_cycle < 1:
            raise ConfigurationError("phases_per_cycle must be >= 1")
        if self.cooling_overhead < 1.0:
            raise ConfigurationError("cooling_overhead must be >= 1.0")

    @property
    def cycle_time_s(self) -> float:
        """Duration of one excitation cycle in seconds."""
        return 1.0 / self.clock_hz

    @property
    def phase_time_s(self) -> float:
        """Duration of one clock phase (one logic level) in seconds."""
        return self.cycle_time_s / self.phases_per_cycle

    def latency_s(self, n_phases: int) -> float:
        """Latency of a pipeline of ``n_phases`` logic levels."""
        if n_phases < 0:
            raise ConfigurationError("n_phases must be non-negative")
        return n_phases * self.phase_time_s

    def energy_j(self, jj_count: int, n_cycles: int) -> float:
        """Energy of ``jj_count`` junctions switching for ``n_cycles`` cycles."""
        if jj_count < 0 or n_cycles < 0:
            raise ConfigurationError("jj_count and n_cycles must be non-negative")
        return jj_count * n_cycles * self.energy_per_jj_j * self.cooling_overhead
