"""Majority synthesis passes.

In AQFP the 3-input majority gate costs exactly as much as a 2-input AND or
OR (both are a majority cell with one branch tied to a constant), so it pays
to re-express logic in terms of majority gates.  Two passes are provided:

* :func:`rewrite_to_majority` -- replace every AND2/OR2 with an explicit
  MAJ3 plus constant.  This is cost-neutral by itself but exposes the
  structure to the collapsing pass and mirrors how the physical cells are
  actually built.
* :func:`collapse_majority_chains` -- merge a 2-level pattern
  ``MAJ(MAJ(a, b, const), c, const)`` arising from AND/OR trees into wider
  majority chains when the logic allows it: ``AND(AND(a, b), c)`` and
  ``OR(OR(a, b), c)`` keep their function when the inner constant is reused,
  saving one constant cell and one level of the tree in the common
  reduction-tree shapes used by the categorization block.

:func:`majority_synthesis` runs both and reports the savings; this is the
"majority synthesis for further performance improvement" item of the paper's
contribution list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aqfp.cells import CellType
from repro.aqfp.netlist import Netlist

__all__ = ["SynthesisReport", "rewrite_to_majority", "collapse_majority_chains", "majority_synthesis"]


@dataclass(frozen=True)
class SynthesisReport:
    """Statistics of a majority-synthesis run."""

    and_or_rewritten: int
    chains_collapsed: int
    jj_before: int
    jj_after: int
    depth_before: int
    depth_after: int

    @property
    def jj_saving(self) -> int:
        """Absolute JJ saving achieved by synthesis."""
        return self.jj_before - self.jj_after


def _copy(netlist: Netlist) -> tuple[Netlist, dict[int, int]]:
    copy = Netlist(netlist.name)
    mapping: dict[int, int] = {}
    for node_id in netlist.topological_order():
        node = netlist.nodes[node_id]
        if node.cell_type is CellType.INPUT:
            mapping[node_id] = copy.add_input(node.name)
        else:
            mapping[node_id] = copy.add_gate(
                node.cell_type, [mapping[s] for s in node.inputs], node.name
            )
    copy.set_outputs([mapping[o] for o in netlist.outputs])
    return copy, mapping


def rewrite_to_majority(netlist: Netlist) -> tuple[Netlist, int]:
    """Replace AND2/OR2 cells by MAJ3 cells with an explicit constant input.

    Returns ``(new_netlist, gates_rewritten)``.  Constants are shared per
    polarity so the rewrite does not inflate the constant count.
    """
    result = Netlist(netlist.name)
    mapping: dict[int, int] = {}
    shared_const: dict[CellType, int] = {}
    rewritten = 0

    def _constant(cell: CellType) -> int:
        if cell not in shared_const:
            shared_const[cell] = result.add_gate(cell, (), f"shared.{cell.value}")
        return shared_const[cell]

    for node_id in netlist.topological_order():
        node = netlist.nodes[node_id]
        if node.cell_type is CellType.INPUT:
            mapping[node_id] = result.add_input(node.name)
            continue
        inputs = [mapping[s] for s in node.inputs]
        if node.cell_type is CellType.AND2:
            const = _constant(CellType.CONST_0)
            mapping[node_id] = result.add_gate(
                CellType.MAJ3, (inputs[0], inputs[1], const), node.name or "maj_and"
            )
            rewritten += 1
        elif node.cell_type is CellType.OR2:
            const = _constant(CellType.CONST_1)
            mapping[node_id] = result.add_gate(
                CellType.MAJ3, (inputs[0], inputs[1], const), node.name or "maj_or"
            )
            rewritten += 1
        else:
            mapping[node_id] = result.add_gate(node.cell_type, inputs, node.name)
    result.set_outputs([mapping[o] for o in netlist.outputs])
    return result, rewritten


def collapse_majority_chains(netlist: Netlist) -> tuple[Netlist, int]:
    """Remove redundant buffers feeding majority gates.

    After balancing and rewriting, chains frequently contain
    ``MAJ(BUFFER(x), y, z)`` patterns where the buffer exists purely for
    structural reasons that a later balancing pass will re-derive anyway.
    Collapsing them before re-balancing lets the balancer place only the
    padding that is really required.  Returns ``(new_netlist, removed)``.
    """
    source, _ = _copy(netlist)
    removed = 0
    for node in source.nodes.values():
        if node.cell_type is not CellType.MAJ3:
            continue
        new_inputs = []
        changed = False
        for src in node.inputs:
            producer = source.nodes[src]
            if producer.cell_type is CellType.BUFFER:
                new_inputs.append(producer.inputs[0])
                changed = True
                removed += 1
            else:
                new_inputs.append(src)
        if changed:
            node.inputs = tuple(new_inputs)
    # Dead buffers remain in the node table but no longer drive anything; a
    # compaction pass drops them so they stop counting towards JJ totals.
    compacted = Netlist(source.name)
    mapping: dict[int, int] = {}
    live = _live_nodes(source)
    for node_id in source.topological_order():
        if node_id not in live:
            continue
        node = source.nodes[node_id]
        if node.cell_type is CellType.INPUT:
            mapping[node_id] = compacted.add_input(node.name)
        else:
            mapping[node_id] = compacted.add_gate(
                node.cell_type, [mapping[s] for s in node.inputs], node.name
            )
    compacted.set_outputs([mapping[o] for o in source.outputs])
    return compacted, removed


def _live_nodes(netlist: Netlist) -> set[int]:
    """Nodes reachable backwards from the primary outputs (plus all inputs)."""
    live: set[int] = set(netlist.inputs)
    stack = list(netlist.outputs)
    while stack:
        node_id = stack.pop()
        if node_id in live and node_id not in netlist.inputs:
            continue
        live.add(node_id)
        stack.extend(netlist.nodes[node_id].inputs)
    return live


def majority_synthesis(netlist: Netlist) -> tuple[Netlist, SynthesisReport]:
    """Run the full majority-synthesis pipeline and report the savings."""
    jj_before = netlist.jj_count()
    depth_before = netlist.logic_depth()
    rewritten_netlist, rewritten = rewrite_to_majority(netlist)
    collapsed, removed = collapse_majority_chains(rewritten_netlist)
    report = SynthesisReport(
        and_or_rewritten=rewritten,
        chains_collapsed=removed,
        jj_before=jj_before,
        jj_after=collapsed.jj_count(),
        depth_before=depth_before,
        depth_after=collapsed.logic_depth(),
    )
    return collapsed, report
