"""Cycle-accurate functional simulation of AQFP netlists.

The simulator evaluates a netlist cycle by cycle (vectorised over cycles)
and is used to prove that the generated hardware -- sorter netlists,
majority chains, comparators -- computes exactly what the fast vectorised
block models in :mod:`repro.blocks` compute.  Logic values propagate through
the DAG in topological order; the deep-pipelining behaviour (one phase per
gate) affects *when* results appear, not *what* they are, so functional
equivalence is checked on values and latency is checked via
:mod:`repro.aqfp.clocking`.
"""

from __future__ import annotations

import numpy as np

from repro.aqfp.cells import CellType
from repro.aqfp.netlist import Netlist
from repro.errors import ShapeError, SimulationError

__all__ = ["simulate"]


def simulate(netlist: Netlist, input_bits: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
    """Evaluate a netlist on per-input bit vectors.

    Args:
        netlist: the netlist to evaluate (validated for acyclicity).
        input_bits: mapping from primary-input node id to a 0/1 array; all
            arrays must share the same shape (typically ``(n_cycles,)``).

    Returns:
        Mapping from primary-output node id to its evaluated bit array.
    """
    netlist.validate()
    inputs = netlist.inputs
    missing = [i for i in inputs if i not in input_bits]
    if missing:
        raise SimulationError(f"missing stimulus for primary inputs {missing}")

    shapes = {np.asarray(v).shape for v in input_bits.values()}
    if len(shapes) > 1:
        raise ShapeError(f"all input arrays must share a shape, got {shapes}")
    shape = shapes.pop() if shapes else (1,)

    values: dict[int, np.ndarray] = {}
    for node_id in netlist.topological_order():
        node = netlist.nodes[node_id]
        kind = node.cell_type
        if kind is CellType.INPUT:
            values[node_id] = np.asarray(input_bits[node_id]).astype(np.uint8)
        elif kind is CellType.CONST_0:
            values[node_id] = np.zeros(shape, dtype=np.uint8)
        elif kind is CellType.CONST_1:
            values[node_id] = np.ones(shape, dtype=np.uint8)
        elif kind in (CellType.BUFFER, CellType.SPLITTER):
            values[node_id] = values[node.inputs[0]]
        elif kind is CellType.INVERTER:
            values[node_id] = (1 - values[node.inputs[0]]).astype(np.uint8)
        elif kind is CellType.AND2:
            a, b = (values[i] for i in node.inputs)
            values[node_id] = (a & b).astype(np.uint8)
        elif kind is CellType.OR2:
            a, b = (values[i] for i in node.inputs)
            values[node_id] = (a | b).astype(np.uint8)
        elif kind is CellType.NAND2:
            a, b = (values[i] for i in node.inputs)
            values[node_id] = (1 - (a & b)).astype(np.uint8)
        elif kind is CellType.NOR2:
            a, b = (values[i] for i in node.inputs)
            values[node_id] = (1 - (a | b)).astype(np.uint8)
        elif kind is CellType.MAJ3:
            a, b, c = (values[i].astype(np.int64) for i in node.inputs)
            values[node_id] = ((a + b + c) >= 2).astype(np.uint8)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unsupported cell type {kind!r}")

    return {out: values[out] for out in netlist.outputs}
