"""Automatic buffer and splitter insertion (phase balancing).

AQFP imposes two structural rules that CMOS does not:

1. **Phase alignment** -- every data input of a gate must arrive with the
   same number of clock phases from the primary inputs, because all gates in
   a phase latch simultaneously.  Paths that are too short must be padded
   with buffer cells.  (Constant cells are exempt: a constant can be
   produced in any phase.)
2. **Explicit fan-out** -- a cell may drive only a limited number of sinks
   (three for the splitter cell here, one for everything else).  Nets with
   higher fan-out need a splitter tree.

:func:`balance_netlist` rewrites a netlist to satisfy both rules and reports
how many buffers and splitters were added -- the "automatic buffer/splitter
insertion" contribution listed in the paper.  Splitters are inserted first
(they add logic levels), then paths are padded to equal depth.  Both passes
are single sweeps in topological order so that even the multi-thousand-gate
sorter netlists of the large blocks balance quickly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aqfp.cells import CellType
from repro.aqfp.netlist import Netlist
from repro.errors import NetlistError

__all__ = ["BalanceReport", "balance_netlist", "insert_splitters", "insert_path_buffers"]

#: Cells whose outputs never need phase padding or splitting consideration.
_PHASE_FREE = (CellType.CONST_0, CellType.CONST_1)


@dataclass(frozen=True)
class BalanceReport:
    """Statistics of a balancing pass."""

    buffers_added: int
    splitters_added: int
    jj_before: int
    jj_after: int
    depth_before: int
    depth_after: int

    @property
    def jj_overhead(self) -> float:
        """Fractional JJ overhead introduced by balancing."""
        if self.jj_before == 0:
            return 0.0
        return (self.jj_after - self.jj_before) / self.jj_before


def _copy_structure(netlist: Netlist) -> tuple[Netlist, dict[int, int]]:
    """Deep-copy a netlist, returning the copy and an old-to-new id map."""
    copy = Netlist(netlist.name)
    mapping: dict[int, int] = {}
    for node_id in netlist.topological_order():
        node = netlist.nodes[node_id]
        if node.cell_type is CellType.INPUT:
            mapping[node_id] = copy.add_input(node.name)
        else:
            new_inputs = [mapping[src] for src in node.inputs]
            mapping[node_id] = copy.add_gate(node.cell_type, new_inputs, node.name)
    copy.set_outputs([mapping[o] for o in netlist.outputs])
    return copy, mapping


def insert_splitters(netlist: Netlist, fanout_limit: int = 3) -> tuple[Netlist, int]:
    """Insert splitter trees so no net drives more sinks than allowed.

    Non-splitter cells may drive a single sink; splitters may drive up to
    ``fanout_limit`` sinks.  For every over-driven net a splitter tree is
    grown until it offers one leaf slot per sink.

    Returns:
        ``(new_netlist, splitters_added)``.
    """
    if fanout_limit < 2:
        raise NetlistError(f"fanout_limit must be >= 2, got {fanout_limit}")
    source, _ = _copy_structure(netlist)
    splitters_added = 0

    sinks_map = source.fanout()
    for node_id in list(source.nodes):
        node = source.nodes[node_id]
        sinks = sinks_map.get(node_id, [])
        limit = fanout_limit if node.cell_type is CellType.SPLITTER else 1
        if len(sinks) <= limit or node.cell_type in _PHASE_FREE:
            continue
        # Grow a splitter tree rooted at this net until it has enough slots.
        # Each slot is a (driver_node, remaining_capacity) entry; attaching a
        # splitter consumes one slot and contributes ``fanout_limit`` more.
        slots: list[int] = [node_id] * limit
        while len(slots) < len(sinks):
            driver = slots.pop(0)
            splitter = source.add_gate(
                CellType.SPLITTER, (driver,), f"{node.name or node_id}.split"
            )
            splitters_added += 1
            slots.extend([splitter] * fanout_limit)
        # Re-point each sink's reference to this net at its assigned slot.
        for sink_id, slot in zip(sinks, slots):
            sink = source.nodes[sink_id]
            replaced = False
            new_inputs = []
            for src in sink.inputs:
                if src == node_id and not replaced:
                    new_inputs.append(slot)
                    replaced = True
                else:
                    new_inputs.append(src)
            sink.inputs = tuple(new_inputs)
    return source, splitters_added


def insert_path_buffers(netlist: Netlist) -> tuple[Netlist, int]:
    """Pad short paths with buffers so all gate data inputs share a phase.

    Returns:
        ``(new_netlist, buffers_added)``.
    """
    source, _ = _copy_structure(netlist)
    buffers_added = 0
    depth: dict[int, int] = {}

    for node_id in source.topological_order():
        node = source.nodes[node_id]
        if node.cell_type is CellType.INPUT or node.cell_type in _PHASE_FREE:
            depth[node_id] = 0
            continue
        if not node.inputs:
            depth[node_id] = 1
            continue
        data_inputs = [
            src for src in node.inputs if source.nodes[src].cell_type not in _PHASE_FREE
        ]
        if not data_inputs:
            depth[node_id] = 1
            continue
        target = max(depth[src] for src in data_inputs)
        new_inputs = []
        for src in node.inputs:
            if source.nodes[src].cell_type in _PHASE_FREE:
                new_inputs.append(src)
                continue
            current = src
            current_depth = depth[src]
            while current_depth < target:
                current = source.add_gate(
                    CellType.BUFFER, (current,), f"{node.name or node_id}.pad"
                )
                buffers_added += 1
                current_depth += 1
                depth[current] = current_depth
            new_inputs.append(current)
        node.inputs = tuple(new_inputs)
        depth[node_id] = target + 1
    return source, buffers_added


def balance_netlist(
    netlist: Netlist, fanout_limit: int = 3
) -> tuple[Netlist, BalanceReport]:
    """Run splitter insertion followed by path balancing.

    Output-side balancing (padding primary outputs to equal depth) is also
    applied so the whole block presents a single latency to its consumer.
    """
    jj_before = netlist.jj_count()
    depth_before = netlist.logic_depth()

    with_splitters, splitters_added = insert_splitters(netlist, fanout_limit)
    balanced, buffers_added = insert_path_buffers(with_splitters)

    # Equalise primary output depth.
    depths = balanced.node_depths()
    outputs = balanced.outputs
    if outputs:
        target = max(depths[o] for o in outputs)
        new_outputs = []
        for out in outputs:
            current = out
            depth = depths[out]
            while depth < target:
                current = balanced.add_gate(CellType.BUFFER, (current,), "out.pad")
                buffers_added += 1
                depth += 1
            new_outputs.append(current)
        balanced.set_outputs(new_outputs)

    report = BalanceReport(
        buffers_added=buffers_added,
        splitters_added=splitters_added,
        jj_before=jj_before,
        jj_after=balanced.jj_count(),
        depth_before=depth_before,
        depth_after=balanced.logic_depth(),
    )
    return balanced, report
