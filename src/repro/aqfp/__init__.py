"""AQFP superconducting technology model.

This subpackage provides everything needed to express the paper's blocks as
adiabatic quantum-flux-parametron hardware and to cost them:

* :mod:`~repro.aqfp.technology` -- technology constants (per-JJ switching
  energy, AC clock frequency, phases per cycle).
* :mod:`~repro.aqfp.cells` -- the standard-cell library built from the AQFP
  buffer in the minimalist-design style (buffer, inverter, constants,
  splitter, 3-input majority, AND/OR/NAND/NOR).
* :mod:`~repro.aqfp.netlist` -- a gate-level netlist DAG with validation and
  JJ/gate statistics.
* :mod:`~repro.aqfp.gates` -- macro builders (XNOR, comparator cells, sorter
  networks, majority chains) on top of the netlist.
* :mod:`~repro.aqfp.balance` -- the automatic buffer and splitter insertion
  required by AQFP's clock-phase discipline and fan-out rule.
* :mod:`~repro.aqfp.synthesis` -- majority synthesis passes.
* :mod:`~repro.aqfp.clocking` -- four-phase clocking / latency model.
* :mod:`~repro.aqfp.energy` -- energy, latency and throughput estimation.
* :mod:`~repro.aqfp.simulator` -- cycle-accurate netlist evaluation used to
  cross-check the vectorised block models.
"""

from repro.aqfp.balance import balance_netlist
from repro.aqfp.cells import CELL_LIBRARY, CellSpec, CellType
from repro.aqfp.clocking import ClockingReport, analyze_clocking
from repro.aqfp.energy import HardwareCost, estimate_cost
from repro.aqfp.netlist import GateInstance, Netlist
from repro.aqfp.simulator import simulate
from repro.aqfp.synthesis import majority_synthesis
from repro.aqfp.technology import AqfpTechnology

__all__ = [
    "AqfpTechnology",
    "CellType",
    "CellSpec",
    "CELL_LIBRARY",
    "Netlist",
    "GateInstance",
    "balance_netlist",
    "majority_synthesis",
    "ClockingReport",
    "analyze_clocking",
    "HardwareCost",
    "estimate_cost",
    "simulate",
]
