"""Gate-level netlist representation for AQFP circuits.

A :class:`Netlist` is a DAG of :class:`GateInstance` nodes.  Every node
drives exactly one net, identified by the node id; primary inputs are nodes
of type :class:`~repro.aqfp.cells.CellType.INPUT`.  The class provides
validation (fan-in arity, acyclicity, dangling references), topological
ordering for simulation, per-cell statistics, logic depth, and fan-out
queries used by the buffer/splitter insertion pass.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.aqfp.cells import CellType, cell_spec
from repro.errors import NetlistError

__all__ = ["GateInstance", "Netlist"]


@dataclass
class GateInstance:
    """One cell instance in a netlist.

    Attributes:
        node_id: unique integer id; also the id of the net this cell drives.
        cell_type: the primitive cell implemented by this instance.
        inputs: node ids of the driving cells, in port order.
        name: optional human-readable label used in reports and debugging.
    """

    node_id: int
    cell_type: CellType
    inputs: tuple[int, ...] = ()
    name: str = ""


class Netlist:
    """A DAG of AQFP cells.

    Args:
        name: label used in reports.
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._nodes: dict[int, GateInstance] = {}
        self._outputs: list[int] = []
        self._next_id = 0

    # -- construction ------------------------------------------------------

    def _allocate(self, cell_type: CellType, inputs: Sequence[int], name: str) -> int:
        spec = cell_spec(cell_type)
        if cell_type is not CellType.INPUT and len(inputs) != spec.n_inputs:
            raise NetlistError(
                f"{cell_type.value} expects {spec.n_inputs} inputs, got {len(inputs)}"
            )
        for src in inputs:
            if src not in self._nodes:
                raise NetlistError(f"input node {src} does not exist")
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = GateInstance(node_id, cell_type, tuple(inputs), name)
        return node_id

    def add_input(self, name: str = "") -> int:
        """Add a primary input and return its node id."""
        return self._allocate(CellType.INPUT, (), name)

    def add_gate(self, cell_type: CellType, inputs: Sequence[int], name: str = "") -> int:
        """Add a gate of the given type and return its node id."""
        if cell_type is CellType.INPUT:
            raise NetlistError("use add_input() for primary inputs")
        return self._allocate(cell_type, inputs, name)

    def set_outputs(self, node_ids: Iterable[int]) -> None:
        """Declare the primary outputs (ordered)."""
        node_ids = list(node_ids)
        for node_id in node_ids:
            if node_id not in self._nodes:
                raise NetlistError(f"output node {node_id} does not exist")
        self._outputs = node_ids

    # -- queries -----------------------------------------------------------

    @property
    def nodes(self) -> dict[int, GateInstance]:
        """All node instances keyed by node id."""
        return self._nodes

    @property
    def outputs(self) -> list[int]:
        """Primary output node ids in declaration order."""
        return list(self._outputs)

    @property
    def inputs(self) -> list[int]:
        """Primary input node ids in creation order."""
        return [n.node_id for n in self._nodes.values() if n.cell_type is CellType.INPUT]

    def __len__(self) -> int:
        return len(self._nodes)

    def fanout(self) -> dict[int, list[int]]:
        """Map each node id to the list of node ids that consume its output."""
        sinks: dict[int, list[int]] = defaultdict(list)
        for node in self._nodes.values():
            for src in node.inputs:
                sinks[src].append(node.node_id)
        return dict(sinks)

    def cell_counts(self) -> Counter:
        """Number of instances of each cell type."""
        return Counter(node.cell_type for node in self._nodes.values())

    def jj_count(self) -> int:
        """Total Josephson junction count of the netlist."""
        return sum(cell_spec(node.cell_type).jj_count for node in self._nodes.values())

    def gate_count(self) -> int:
        """Number of non-input cells."""
        return sum(1 for n in self._nodes.values() if n.cell_type is not CellType.INPUT)

    # -- structure checks --------------------------------------------------

    def topological_order(self) -> list[int]:
        """Return node ids in topological order; raise on cycles."""
        indegree = {node_id: len(node.inputs) for node_id, node in self._nodes.items()}
        ready = deque(sorted(nid for nid, deg in indegree.items() if deg == 0))
        sinks = self.fanout()
        order: list[int] = []
        while ready:
            node_id = ready.popleft()
            order.append(node_id)
            for sink in sinks.get(node_id, ()):
                indegree[sink] -= 1
                if indegree[sink] == 0:
                    ready.append(sink)
        if len(order) != len(self._nodes):
            raise NetlistError(f"netlist {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Check acyclicity and that declared outputs exist."""
        self.topological_order()
        for out in self._outputs:
            if out not in self._nodes:
                raise NetlistError(f"declared output {out} does not exist")

    def node_depths(self) -> dict[int, int]:
        """Logic depth of every node.

        Primary inputs and constant cells sit at depth 0: a constant can be
        generated in any clock phase, so it never constrains alignment.
        Every other cell adds one phase on top of its deepest input.
        """
        depth: dict[int, int] = {}
        for node_id in self.topological_order():
            node = self._nodes[node_id]
            if node.cell_type in (CellType.INPUT, CellType.CONST_0, CellType.CONST_1):
                depth[node_id] = 0
            elif not node.inputs:
                depth[node_id] = 1
            else:
                depth[node_id] = 1 + max(depth[src] for src in node.inputs)
        return depth

    def logic_depth(self) -> int:
        """Maximum number of logic cells on any input-to-output path.

        In AQFP every cell occupies one clock phase, so after balancing this
        equals the pipeline latency in phases.
        """
        depth = self.node_depths()
        if not depth:
            return 0
        targets = self._outputs if self._outputs else list(depth)
        return max(depth[t] for t in targets)

    def is_phase_aligned(self) -> bool:
        """True when every gate's data inputs arrive at the same logic depth.

        This is the AQFP data-synchronisation requirement that the balancing
        pass enforces by inserting buffers.  Constant inputs are exempt (they
        can be produced in any phase).
        """
        depth = self.node_depths()
        for node in self._nodes.values():
            data_inputs = [
                src
                for src in node.inputs
                if self._nodes[src].cell_type
                not in (CellType.CONST_0, CellType.CONST_1)
            ]
            if len(data_inputs) >= 2:
                input_depths = {depth[src] for src in data_inputs}
                if len(input_depths) > 1:
                    return False
        return True

    def fanout_violations(self) -> list[int]:
        """Node ids whose fan-out exceeds their cell's ``max_fanout``."""
        sinks = self.fanout()
        violations = []
        for node_id, node in self._nodes.items():
            limit = cell_spec(node.cell_type).max_fanout
            if len(sinks.get(node_id, ())) > limit:
                violations.append(node_id)
        return violations

    def summary(self) -> dict[str, object]:
        """Compact statistics dictionary used by reports and tests."""
        counts = self.cell_counts()
        return {
            "name": self.name,
            "gates": self.gate_count(),
            "jj": self.jj_count(),
            "depth": self.logic_depth(),
            "inputs": len(self.inputs),
            "outputs": len(self._outputs),
            "cells": {cell.value: count for cell, count in sorted(counts.items(), key=lambda kv: kv[0].value)},
        }
