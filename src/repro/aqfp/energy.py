"""Energy / latency / throughput estimation for AQFP netlists.

The estimator follows the paper's accounting: every junction of every
AC-powered cell dissipates its adiabatic switching energy each excitation
cycle, so processing a stochastic stream of length ``N`` through a block of
``J`` junctions costs ``J * N * E_sw`` regardless of the data.  Latency is
the balanced pipeline depth expressed in clock phases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aqfp.netlist import Netlist
from repro.aqfp.technology import AqfpTechnology
from repro.errors import SimulationError

__all__ = ["HardwareCost", "estimate_cost", "cost_from_counts"]

#: Joules-to-picojoules conversion factor used by the report tables.
J_TO_PJ = 1.0e12
#: Seconds-to-nanoseconds conversion factor used by the report tables.
S_TO_NS = 1.0e9


@dataclass(frozen=True)
class HardwareCost:
    """Cost summary of one hardware block for one stream-wide operation.

    Attributes:
        jj_count: Josephson junctions (or CMOS gate-equivalents for the
            baseline models, which reuse this container).
        energy_pj: energy per operation in picojoules.
        latency_ns: input-to-output latency in nanoseconds.
        throughput_ops_per_s: operations per second once the pipeline is full.
        depth_phases: pipeline depth (clock phases for AQFP, cycles for CMOS).
    """

    jj_count: int
    energy_pj: float
    latency_ns: float
    throughput_ops_per_s: float
    depth_phases: int

    def energy_ratio(self, other: "HardwareCost") -> float:
        """How many times more energy ``other`` uses than this block."""
        if self.energy_pj <= 0:
            raise SimulationError("cannot form a ratio with non-positive energy")
        return other.energy_pj / self.energy_pj

    def speedup(self, other: "HardwareCost") -> float:
        """Latency ratio ``other / self`` (values > 1 mean this block is faster)."""
        if self.latency_ns <= 0:
            raise SimulationError("cannot form a ratio with non-positive latency")
        return other.latency_ns / self.latency_ns


def cost_from_counts(
    jj_count: int,
    depth_phases: int,
    technology: AqfpTechnology,
    stream_length: int,
) -> HardwareCost:
    """Build a :class:`HardwareCost` from raw JJ and depth counts.

    Used when a block's cost is assembled analytically (for very large
    blocks whose explicit netlist would be slow to construct) as well as by
    :func:`estimate_cost`.
    """
    if jj_count < 0 or depth_phases < 0:
        raise SimulationError("jj_count and depth_phases must be non-negative")
    if stream_length <= 0:
        raise SimulationError(f"stream_length must be positive, got {stream_length}")
    energy_j = technology.energy_j(jj_count, stream_length)
    # The paper's tables quote the AQFP pipeline-fill latency (depth x phase
    # time); the stream itself then takes stream_length excitation cycles,
    # which is captured by the throughput figure instead.
    latency_s = technology.latency_s(depth_phases)
    ops_per_s = 1.0 / (stream_length * technology.cycle_time_s)
    return HardwareCost(
        jj_count=jj_count,
        energy_pj=energy_j * J_TO_PJ,
        latency_ns=latency_s * S_TO_NS,
        throughput_ops_per_s=ops_per_s,
        depth_phases=depth_phases,
    )


def estimate_cost(
    netlist: Netlist,
    technology: AqfpTechnology,
    stream_length: int = 1024,
) -> HardwareCost:
    """Estimate the cost of processing one stream through a netlist."""
    return cost_from_counts(
        jj_count=netlist.jj_count(),
        depth_phases=netlist.logic_depth(),
        technology=technology,
        stream_length=stream_length,
    )
