"""Table 1: absolute inaccuracy of the sorter-based feature-extraction block."""

import pytest

from repro.eval.block_accuracy import table1_feature_extraction
from repro.eval.tables import format_table

INPUT_SIZES = (9, 25, 49, 81, 121)


@pytest.mark.paper_table("Table 1")
def test_table1_feature_extraction_accuracy(benchmark, quick_stream_lengths):
    # reference="expected" isolates the stochastic error component (the
    # paper's 1/sqrt(N) trend); the systematic soft-knee deviation from the
    # ideal clip is covered separately in EXPERIMENTS.md and the ablations.
    table = benchmark.pedantic(
        table1_feature_extraction,
        kwargs={
            "input_sizes": INPUT_SIZES,
            "stream_lengths": quick_stream_lengths,
            "trials": 12,
            "reference": "expected",
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [size] + [table[size][length] for length in quick_stream_lengths]
        for size in INPUT_SIZES
    ]
    print()
    print(
        format_table(
            ["Input size"] + [str(n) for n in quick_stream_lengths],
            rows,
            title="Table 1: feature-extraction block absolute inaccuracy",
        )
    )
    # Error must shrink with stream length for every input size.
    for size in INPUT_SIZES:
        assert table[size][quick_stream_lengths[-1]] < table[size][quick_stream_lengths[0]]
