"""Ablation benchmarks for the design choices called out in DESIGN.md."""

import pytest

from repro.eval.ablations import (
    ablation_balancing_overhead,
    ablation_feedback_mode,
    ablation_majority_synthesis,
    ablation_rng_sharing,
    ablation_sorter_vs_apc,
)
from repro.eval.tables import format_table


def _print(result: dict, title: str) -> None:
    print()
    print(format_table(["Metric", "Value"], list(result.items()), title=title))


@pytest.mark.paper_table("Ablation: sorter vs APC block")
def test_ablation_sorter_vs_apc(benchmark):
    result = benchmark.pedantic(
        ablation_sorter_vs_apc,
        kwargs={"input_size": 25, "stream_length": 1024, "trials": 8},
        rounds=1,
        iterations=1,
    )
    _print(result, "Ablation: sorter-based block vs prior-work APC block")
    assert result["sorter_mean_abs_error"] < 0.6
    assert result["apc_mean_abs_error"] < 0.6


@pytest.mark.paper_table("Ablation: feedback accumulator")
def test_ablation_feedback_mode(benchmark):
    result = benchmark.pedantic(
        ablation_feedback_mode,
        kwargs={"input_size": 49, "stream_length": 1024, "trials": 8},
        rounds=1,
        iterations=1,
    )
    _print(result, "Ablation: signed vs unsigned feedback accumulator")
    assert result["signed_mean_abs_error"] < result["unsigned_mean_abs_error"]


@pytest.mark.paper_table("Ablation: RNG matrix sharing")
def test_ablation_rng_sharing(benchmark):
    result = benchmark.pedantic(
        ablation_rng_sharing,
        kwargs={"n_outputs": 100, "cycles": 1024},
        rounds=1,
        iterations=1,
    )
    _print(result, "Ablation: shared RNG matrix vs private TRNGs")
    assert result["rng_shared_jj"] < result["rng_private_jj"]


@pytest.mark.paper_table("Ablation: majority synthesis")
def test_ablation_majority_synthesis(benchmark):
    result = benchmark(ablation_majority_synthesis, 8)
    _print(result, "Ablation: majority synthesis of a sorter netlist")
    assert result["gates_rewritten"] > 0


@pytest.mark.paper_table("Ablation: buffer/splitter insertion")
def test_ablation_balancing_overhead(benchmark):
    result = benchmark(ablation_balancing_overhead, 8)
    _print(result, "Ablation: automatic buffer/splitter insertion overhead")
    assert result["phase_aligned"] == 1.0
