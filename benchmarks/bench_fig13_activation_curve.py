"""Fig. 13: activated output transfer curve of the feature-extraction block."""

import numpy as np
import pytest

from repro.eval.figures import fig13_activation_curve
from repro.eval.tables import format_table


@pytest.mark.paper_table("Figure 13")
def test_fig13_activation_curve(benchmark):
    data = benchmark.pedantic(
        fig13_activation_curve,
        kwargs={"n_inputs": 25, "stream_length": 2048, "n_points": 25},
        rounds=1,
        iterations=1,
    )
    rows = [
        [z, y, c]
        for z, y, c in zip(data["inner_product"], data["block_output"], data["ideal_clip"])
    ]
    print()
    print(
        format_table(
            ["Inner product", "Block output", "Ideal clip"],
            rows,
            title="Figure 13: feature-extraction activation transfer curve",
        )
    )
    # The measured curve is monotone (up to sampling noise) and saturates at
    # +-1 like the paper's shifted-ReLU-shaped plot.
    output = data["block_output"]
    assert np.all(np.diff(output) > -0.1)
    assert output[0] < -0.9 and output[-1] > 0.9
