#!/usr/bin/env python
"""Performance benchmark harness: legacy byte-per-bit vs packed/batched paths.

Times the SC hot kernels -- SNG word generation, XNOR multiplication,
sorter average pooling, sorter feature extraction, and end-to-end bit-exact
network inference -- at several stream lengths, for both the legacy
``uint8``/per-instance paths and the word-packed / batched engines, and
writes ``BENCH_perf.json`` (seconds, ops/sec, speedup, peak bytes).  Each
run is also **appended to the ``history`` list** inside the JSON report,
so the performance trajectory accumulates across PRs instead of being
overwritten.

End-to-end inference is timed through the execution-backend registry
(:mod:`repro.backends`): the per-image legacy oracle vs the batched uint8
path, and the batched path vs the word-packed data plane
(``bit-exact-packed``), each entry recording the backend names it compared.

Every comparison **asserts bit-exactness** between the two paths before
reporting a speedup: the packed engine is a faster representation of the
same hardware, not an approximation.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py [--quick] [--output PATH]

``--quick`` restricts the stream-length grid (used by CI smoke runs).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.backends import create_backend
from repro.blocks.batched import feature_extraction_recurrence_words
from repro.blocks.feature_extraction import SorterFeatureExtractionBlock
from repro.blocks.pooling import SorterAveragePoolingBlock
from repro.nn.architectures import LayerSpec, build_network
from repro.nn.sc_layers import ScNetworkMapper
from repro.rng.lfsr import Lfsr
from repro.sc.bitstream import Bitstream
from repro.sc.ops import xnor_multiply
from repro.sc import native
from repro.sc.packed import (
    fused_xnor_column_counts,
    pack_bits,
    pack_comparator_words,
    packed_column_counts,
    packed_xnor,
)
from repro.sc.sng import StochasticNumberGenerator
from repro.workspace import Workspace

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_LENGTHS = (256, 1024, 8192)
QUICK_LENGTHS = (256, 1024)

#: Approximate bit-operations per timed measurement; the inner repetition
#: count of the cheap kernels is scaled so that even a fast path runs long
#: enough to time reliably.
TARGET_BIT_OPS = 50_000_000


def _legacy_lfsr_words(lfsr: Lfsr, count: int) -> np.ndarray:
    """The pre-vectorisation ``Lfsr.words`` hot path: one step per word."""
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        out[i] = lfsr.step()
    return out


def _legacy_xnor_bits(bits_a: np.ndarray, bits_b: np.ndarray) -> np.ndarray:
    """The pre-packing XNOR data path (byte per bit, logical ufuncs)."""
    return np.logical_not(np.logical_xor(bits_a, bits_b)).astype(np.uint8)


def _time_call(fn, repeats: int = 2):
    """Best-of-``repeats`` wall time plus the function result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _peak_bytes(fn) -> int:
    """Peak traced allocation of one run (NumPy buffers are traced)."""
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def _entry(
    kernel: str,
    stream_length: int,
    n_ops: int,
    legacy_fn,
    new_fn,
    check_equal,
    legacy_repeats: int = 1,
    new_repeats: int = 2,
    backend: str | None = None,
    baseline_backend: str | None = None,
    workers: int | None = None,
) -> dict:
    """Time both paths, assert bit-exactness, and build one JSON record.

    Peak bytes are ``tracemalloc``-traced Python-heap allocations of one
    run of each path (NumPy buffers are traced; memory of worker
    *processes* spawned by the parallel backend is not, so its entries
    measure the coordinator side only).  ``peak_bytes_ratio`` is the
    new-path peak divided by the legacy peak -- the per-kernel memory
    delta the ISSUE 4 fused kernels are judged on.
    """
    legacy_seconds, legacy_result = _time_call(legacy_fn, legacy_repeats)
    new_seconds, new_result = _time_call(new_fn, new_repeats)
    assert check_equal(legacy_result, new_result), (
        f"{kernel} @ N={stream_length}: packed/batched output differs from "
        "the legacy path"
    )
    legacy_peak = _peak_bytes(legacy_fn)
    new_peak = _peak_bytes(new_fn)
    entry = {
        "kernel": kernel,
        "stream_length": stream_length,
        "bit_ops": n_ops,
        "legacy_seconds": legacy_seconds,
        "new_seconds": new_seconds,
        "speedup": legacy_seconds / new_seconds,
        "legacy_ops_per_sec": n_ops / legacy_seconds,
        "new_ops_per_sec": n_ops / new_seconds,
        "legacy_peak_bytes": legacy_peak,
        "new_peak_bytes": new_peak,
        "peak_bytes_ratio": new_peak / legacy_peak if legacy_peak else None,
        "bit_exact": True,
    }
    if backend is not None:
        entry["backend"] = backend
    if baseline_backend is not None:
        entry["baseline_backend"] = baseline_backend
    if workers is not None:
        entry["workers"] = workers
    label = kernel if workers is None else f"{kernel}[w={workers}]"
    print(
        f"  {label:<26s} N={stream_length:<6d} "
        f"legacy {legacy_seconds * 1e3:8.2f} ms   "
        f"new {new_seconds * 1e3:8.2f} ms   "
        f"speedup {entry['speedup']:7.1f}x   "
        f"peak {new_peak / 1e6:7.2f} / {legacy_peak / 1e6:7.2f} MB"
    )
    return entry


def bench_sng(length: int) -> dict:
    """LFSR random-word generation feeding SNG comparators."""
    n_values = 64
    count = n_values * length
    legacy_lfsr = Lfsr(10, seed=17)
    fast_lfsr = Lfsr(10, seed=17)

    def legacy():
        legacy_lfsr.reset()
        return _legacy_lfsr_words(legacy_lfsr, count)

    def fast():
        fast_lfsr.reset()
        return fast_lfsr.words(count)

    return _entry(
        "sng-lfsr-words",
        length,
        count,
        legacy,
        fast,
        lambda a, b: np.array_equal(a, b),
    )


def bench_sng_word_direct(length: int) -> dict:
    """Full SNG conversion: per-step LFSR + byte-per-bit comparator vs the
    word-direct path (chunked vectorised LFSR straight into packed words).

    The legacy side reproduces the pre-vectorisation SNG exactly: one
    Python LFSR step per cycle, then the comparator materialising a
    byte-per-bit stream tensor (on top of the eight-bytes-per-cycle word
    tensor).  The word-direct path never materialises either full-stream
    tensor, which is what the memory-regression guard in ``run()`` pins
    down.
    """
    n_values = 64
    values = np.linspace(-1.0, 1.0, n_values)
    count = n_values * length
    legacy_sng = StochasticNumberGenerator(Lfsr(10, seed=17))
    fast_sng = StochasticNumberGenerator(Lfsr(10, seed=17))
    thresholds = legacy_sng.thresholds(values)

    def legacy():
        legacy_sng.source.reset()
        words = _legacy_lfsr_words(legacy_sng.source, count)
        return (words.reshape(n_values, length) < thresholds[:, None]).astype(
            np.uint8
        )

    def fast():
        fast_sng.source.reset()
        return fast_sng.generate_packed(values, length)

    return _entry(
        "sng-word-direct",
        length,
        count,
        legacy,
        fast,
        lambda a, b: np.array_equal(a, b.unpack()),
    )


def bench_fused_counts(length: int) -> dict:
    """Inner-product reduction: materialised XNOR products + CSA tree vs
    the fused streaming kernel (O(log M) live planes, no product tensor)."""
    m, instances = 128, 64  # FC-like fan-in: where de-materialising pays
    rng = np.random.default_rng(4)
    a = pack_bits(rng.integers(0, 2, (instances, m, length), dtype=np.uint8))
    b = pack_bits(rng.integers(0, 2, (instances, m, length), dtype=np.uint8))
    workspace = Workspace()
    inner = max(1, TARGET_BIT_OPS // (instances * m * length))

    def legacy():
        for _ in range(inner):
            out = packed_column_counts(packed_xnor(a, b, length), length)
        return out

    def fused():
        for _ in range(inner):
            out = fused_xnor_column_counts(a, b, length, workspace=workspace)
        return out

    return _entry(
        "fused-column-counts",
        length,
        inner * instances * m * length,
        legacy,
        fused,
        lambda x, y: np.array_equal(x, y),
        legacy_repeats=2,
    )


def bench_xnor(length: int) -> dict:
    """Bipolar SC multiplication: byte-per-bit ufuncs vs packed words."""
    n_values = 256
    rng = np.random.default_rng(1)
    bits_a = rng.integers(0, 2, (n_values, length), dtype=np.uint8)
    bits_b = rng.integers(0, 2, (n_values, length), dtype=np.uint8)
    packed_a = Bitstream(bits_a).packed()
    packed_b = Bitstream(bits_b).packed()
    inner = max(1, TARGET_BIT_OPS // (n_values * length))

    def legacy():
        for _ in range(inner):
            out = _legacy_xnor_bits(bits_a, bits_b)
        return out

    def fast():
        for _ in range(inner):
            out = xnor_multiply(packed_a, packed_b)
        return out

    return _entry(
        "xnor-multiply",
        length,
        inner * n_values * length,
        legacy,
        fast,
        lambda a, b: np.array_equal(a, b.unpack()),
        legacy_repeats=2,
    )


def bench_pooling(length: int) -> dict:
    """Sorter average pooling: per-cycle loop vs closed-form cumsum."""
    m, instances = 4, 64
    rng = np.random.default_rng(2)
    bits = rng.integers(0, 2, (instances, m, length), dtype=np.uint8)
    block = SorterAveragePoolingBlock(m)
    return _entry(
        "pooling",
        length,
        instances * m * length,
        lambda: block.forward_bits_reference(bits),
        lambda: block.forward_bits(bits),
        lambda a, b: np.array_equal(a, b),
        legacy_repeats=2,
        new_repeats=3,
    )


def bench_feature_extraction(length: int) -> dict:
    """Feature extraction: one recurrence per block vs whole-layer batch."""
    m, instances = 9, 128
    rng = np.random.default_rng(3)
    products = rng.integers(0, 2, (instances, m, length), dtype=np.uint8)
    block = SorterFeatureExtractionBlock(m)

    def legacy():
        return np.stack([block.forward_products(p) for p in products])

    return _entry(
        "feature-extraction",
        length,
        instances * m * length,
        legacy,
        lambda: block.forward_products(products),
        lambda a, b: np.array_equal(a, b),
    )


def _bench_network_mapper(length: int) -> ScNetworkMapper:
    """The small CNN used by every end-to-end inference benchmark."""
    specs = [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=4),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC32", units=32),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]
    network = build_network(
        specs, activation="hardware", seed=5, training_stream_length=256
    )
    return ScNetworkMapper(network, stream_length=length, seed=7)


def bench_end_to_end(length: int, n_images: int) -> dict:
    """Whole-network bit-exact inference: per-image legacy vs batched.

    Both paths run through the execution-backend registry.
    """
    mapper = _bench_network_mapper(length)
    images = np.random.default_rng(11).random((n_images, 1, 28, 28))
    legacy = create_backend("bit-exact-legacy", mapper)
    batched = create_backend("bit-exact-batched", mapper)
    return _entry(
        "bit-exact-inference",
        length,
        n_images * length,
        lambda: legacy.forward(images),
        lambda: batched.forward(images),
        lambda a, b: np.array_equal(a, b),
        new_repeats=1,
        backend="bit-exact-batched",
        baseline_backend="bit-exact-legacy",
    )


def bench_packed_end_to_end(length: int, n_images: int) -> dict:
    """Whole-network bit-exact inference: batched uint8 vs packed data plane.

    The baseline here is the PR 1 *batched* path (not the per-image
    legacy), so the recorded speedup isolates what the word-packed
    inter-layer data plane buys on top of batching.
    """
    mapper = _bench_network_mapper(length)
    images = np.random.default_rng(11).random((n_images, 1, 28, 28))
    batched = create_backend("bit-exact-batched", mapper)
    packed = create_backend("bit-exact-packed", mapper)
    return _entry(
        "bit-exact-inference-packed",
        length,
        n_images * length,
        lambda: batched.forward(images),
        lambda: packed.forward(images),
        lambda a, b: np.array_equal(a, b),
        new_repeats=1,
        backend="bit-exact-packed",
        baseline_backend="bit-exact-batched",
    )


def bench_parallel_scaling(length: int, n_images: int, worker_counts) -> list:
    """Worker-count scaling sweep of the process-sharded packed backend.

    Baseline: the single-core ``bit-exact-packed`` forward.  Each sweep
    point runs ``bit-exact-packed-mp`` with that many worker processes on
    the same images and asserts bit-identical scores.  Speedups only
    materialise with real cores (the entries record the host CPU count in
    the report's ``host`` block); on a single-CPU host the sweep still
    proves the sharded path's exactness and bounded IPC overhead.
    """
    mapper = _bench_network_mapper(length)
    images = np.random.default_rng(11).random((n_images, 1, 28, 28))
    packed = create_backend("bit-exact-packed", mapper)
    packed.forward(images[:1])  # warm the workspace arena
    entries = []
    for workers in worker_counts:
        parallel = create_backend(
            "bit-exact-packed-mp", mapper, workers=workers
        )
        try:
            parallel.forward(images)  # warm the pool (and worker arenas)
            entries.append(
                _entry(
                    "bit-exact-inference-mp",
                    length,
                    n_images * length,
                    lambda: packed.forward(images),
                    lambda p=parallel: p.forward(images),
                    lambda a, b: np.array_equal(a, b),
                    new_repeats=1,
                    backend="bit-exact-packed-mp",
                    baseline_backend="bit-exact-packed",
                    workers=workers,
                )
            )
        finally:
            parallel.close()
    return entries


def bench_native_fused_counts(length: int) -> dict:
    """Compiled fused XNOR+popcount vs the NumPy Harley-Seal CSA tree.

    Both sides start from the same packed operands; the "legacy" side here
    is the *current* NumPy fused kernel (itself already fused and
    allocation-free), so the recorded speedup isolates exactly what native
    code buys: hardware ``popcntq`` and no per-plane ufunc dispatch.
    """
    m, instances = 128, 64
    rng = np.random.default_rng(4)
    a = pack_bits(rng.integers(0, 2, (instances, m, length), dtype=np.uint8))
    b = pack_bits(rng.integers(0, 2, (instances, m, length), dtype=np.uint8))
    numpy_ws, native_ws = Workspace(), Workspace()
    inner = max(1, TARGET_BIT_OPS // (instances * m * length))

    def numpy_path():
        for _ in range(inner):
            out = fused_xnor_column_counts(a, b, length, workspace=numpy_ws)
        return out

    def native_path():
        for _ in range(inner):
            out = native.fused_xnor_column_counts(
                a, b, length, workspace=native_ws
            )
        assert out is not None, "native fused kernel rejected a bench shape"
        return out

    return _entry(
        "native-fused-counts",
        length,
        inner * instances * m * length,
        numpy_path,
        native_path,
        lambda x, y: np.array_equal(x, y),
        legacy_repeats=2,
    )


def bench_native_fe_stepper(length: int) -> dict:
    """Compiled word-blocked FE stepper vs the NumPy strategy dispatcher."""
    batch = 128
    half, low, high = 4, -4, 5  # the m=9 sorter column bounds
    rng = np.random.default_rng(6)
    counts = rng.integers(0, 2 * half + 2, (length, batch), dtype=np.uint8)
    numpy_ws, native_ws = Workspace(), Workspace()
    inner = max(1, TARGET_BIT_OPS // (batch * length * 8))

    def numpy_path():
        for _ in range(inner):
            out = feature_extraction_recurrence_words(
                counts, half, low, high, workspace=numpy_ws
            )
        return out

    def native_path():
        for _ in range(inner):
            out = native.feature_extraction_recurrence_words(
                counts, half, low, high, workspace=native_ws
            )
        assert out is not None, "native FE stepper rejected a bench shape"
        return out

    return _entry(
        "native-fe-stepper",
        length,
        inner * batch * length,
        numpy_path,
        native_path,
        lambda x, y: np.array_equal(x, y),
        legacy_repeats=2,
    )


def bench_native_pack_comparator(length: int) -> dict:
    """Compiled word-direct SNG comparator vs the NumPy packbits fold."""
    n_values = 256
    rng = np.random.default_rng(8)
    draws = rng.integers(0, 1 << 10, (n_values, length), dtype=np.int64)
    thresholds = rng.integers(0, 1 << 10, n_values, dtype=np.int64)
    inner = max(1, TARGET_BIT_OPS // (n_values * length))

    def numpy_path():
        for _ in range(inner):
            out = pack_comparator_words(draws, thresholds)
        return out

    def native_path():
        for _ in range(inner):
            out = native.pack_comparator_words(draws, thresholds)
        assert out is not None, "native comparator rejected a bench shape"
        return out

    return _entry(
        "native-pack-comparator",
        length,
        inner * n_values * length,
        numpy_path,
        native_path,
        lambda x, y: np.array_equal(x, y),
        legacy_repeats=2,
    )


def bench_native_end_to_end(length: int, n_images: int) -> dict:
    """Whole-network inference: NumPy packed plane vs compiled kernel tier."""
    mapper = _bench_network_mapper(length)
    images = np.random.default_rng(11).random((n_images, 1, 28, 28))
    packed = create_backend("bit-exact-packed", mapper)
    native_backend = create_backend("bit-exact-native", mapper)
    return _entry(
        "bit-exact-inference-native",
        length,
        n_images * length,
        lambda: packed.forward(images),
        lambda: native_backend.forward(images),
        lambda a, b: np.array_equal(a, b),
        new_repeats=2,
        backend="bit-exact-native",
        baseline_backend="bit-exact-packed",
    )


def bench_thread_scaling(length: int, n_images: int, worker_counts) -> list:
    """Worker-count scaling sweep of the thread-sharded native backend.

    The thread-mode counterpart of :func:`bench_parallel_scaling`: the
    compiled kernels release the GIL, so shards genuinely overlap without
    any process spawn or IPC cost.  Baseline is the single-core
    ``bit-exact-native`` forward; comparing this sweep against the
    process sweep at the same worker counts is the thread-vs-process
    executor comparison in the report.
    """
    mapper = _bench_network_mapper(length)
    images = np.random.default_rng(11).random((n_images, 1, 28, 28))
    single = create_backend("bit-exact-native", mapper)
    single.forward(images[:1])  # warm the workspace arena
    entries = []
    for workers in worker_counts:
        parallel = create_backend(
            "bit-exact-native-mp", mapper, workers=workers
        )
        try:
            parallel.forward(images)  # warm the pool (and replica arenas)
            entries.append(
                _entry(
                    "bit-exact-inference-native-mp",
                    length,
                    n_images * length,
                    lambda: single.forward(images),
                    lambda p=parallel: p.forward(images),
                    lambda a, b: np.array_equal(a, b),
                    new_repeats=2,
                    backend="bit-exact-native-mp",
                    baseline_backend="bit-exact-native",
                    workers=workers,
                )
            )
        finally:
            parallel.close()
    return entries


def host_context() -> dict:
    """Host facts that make cross-run speedup comparisons interpretable."""
    return {
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "native": native.describe(),
    }


#: Default cap on the accumulated ``history`` list: enough runs to read a
#: trajectory across many PRs without the report growing without bound.
DEFAULT_HISTORY_LIMIT = 50


def _load_history(output: Path) -> list:
    """Prior run records from an existing report (tolerates missing/old files)."""
    try:
        previous = json.loads(output.read_text())
    except (OSError, ValueError):
        return []
    history = previous.get("history", []) if isinstance(previous, dict) else []
    return history if isinstance(history, list) else []


def _memory_regression_guard(entries: list) -> None:
    """Hard guard: the word-direct SNG must stay *below* legacy memory.

    Before ISSUE 4 the vectorised SNG path peaked at ~10x the legacy
    byte-per-bit path (the LFSR materialised the whole word tensor); the
    word-direct kernel removed that regression, and this assert keeps it
    removed.  Runs at N=1024, which both the quick (CI) and full grids
    include.
    """
    for entry in entries:
        if entry["kernel"] == "sng-word-direct" and entry["stream_length"] == 1024:
            assert entry["new_peak_bytes"] < entry["legacy_peak_bytes"], (
                "memory regression: word-direct SNG peaked at "
                f"{entry['new_peak_bytes']} bytes, above the legacy path's "
                f"{entry['legacy_peak_bytes']}"
            )
            return
    raise AssertionError("no sng-word-direct entry at N=1024 to guard")


def _scaling_guard(entries: list, quick: bool) -> None:
    """Multi-core guard: >= 2x over single-core packed with >= 4 workers.

    Only enforceable where >= 4 real cores exist; on smaller hosts the
    sweep still asserts bit-exactness (inside ``_entry``) and the guard
    reports why it is skipped.
    """
    cpus = os.cpu_count() or 1
    sweep = [e for e in entries if e["kernel"] == "bit-exact-inference-mp"]
    if not sweep:
        return
    best = max(e["speedup"] for e in sweep)
    if quick or cpus < 4:
        print(
            f"  parallel scaling guard skipped (quick={quick}, cpus={cpus}); "
            f"best observed speedup {best:.2f}x"
        )
        return
    eligible = [e for e in sweep if e.get("workers", 0) >= 4]
    best4 = max(e["speedup"] for e in eligible)
    assert best4 >= 2.0, (
        f"parallel backend reached only {best4:.2f}x over single-core "
        f"packed with >= 4 workers on a {cpus}-CPU host"
    )


def _native_guard(entries: list, require: bool) -> None:
    """Compiled-tier guard: >= 2x over the NumPy fused CSA tree.

    The native tier's contract is "same bits, materially faster"; the
    fused XNOR+popcount reduction is the kernel with the least NumPy
    overhead left to beat, so it is where the 2x floor is asserted.  The
    guard is only *enforced* under ``--assert-native`` (the CI native
    smoke job); without the flag a shortfall -- or an absent tier -- just
    prints, so NumPy-only hosts stay green.
    """
    fused = [e for e in entries if e["kernel"] == "native-fused-counts"]
    if not fused:
        if require:
            raise AssertionError(
                "--assert-native: compiled kernel tier unavailable "
                f"({native.native_error()})"
            )
        return
    best = max(e["speedup"] for e in fused)
    print(
        f"  native guard: fused-counts best speedup {best:.2f}x over the "
        f"NumPy CSA tree (floor 2.0x {'enforced' if require else 'advisory'})"
    )
    if require:
        assert best >= 2.0, (
            f"compiled fused-counts kernel reached only {best:.2f}x over "
            "the NumPy CSA tree; the native tier must buy >= 2x"
        )


def run(
    quick: bool,
    output: Path,
    history_limit: int = DEFAULT_HISTORY_LIMIT,
    assert_native: bool = False,
) -> dict:
    # Reject a bad limit before spending minutes measuring.
    if history_limit < 1:
        raise SystemExit("--history-limit must be >= 1")
    lengths = QUICK_LENGTHS if quick else FULL_LENGTHS
    entries = []
    for length in lengths:
        print(f"stream length N = {length}:")
        entries.append(bench_sng(length))
        entries.append(bench_sng_word_direct(length))
        entries.append(bench_xnor(length))
        entries.append(bench_fused_counts(length))
        entries.append(bench_pooling(length))
        entries.append(bench_feature_extraction(length))
        if native.available():
            entries.append(bench_native_fused_counts(length))
            entries.append(bench_native_fe_stepper(length))
            entries.append(bench_native_pack_comparator(length))
    # End-to-end inference is dominated by the legacy per-image cost, so it
    # runs at a single stream length (longer in the full sweep); the
    # packed-vs-batched comparison has no per-image path and therefore
    # affords the long-stream regime where packing matters most.
    print("end-to-end:")
    if quick:
        entries.append(bench_end_to_end(256, n_images=2))
        entries.append(bench_packed_end_to_end(1024, n_images=2))
        entries.extend(bench_parallel_scaling(1024, n_images=4, worker_counts=(2,)))
        if native.available():
            entries.append(bench_native_end_to_end(1024, n_images=2))
            entries.extend(
                bench_thread_scaling(1024, n_images=4, worker_counts=(2,))
            )
    else:
        entries.append(bench_end_to_end(1024, n_images=4))
        entries.append(bench_packed_end_to_end(8192, n_images=4))
        entries.extend(
            bench_parallel_scaling(8192, n_images=8, worker_counts=(1, 2, 4))
        )
        if native.available():
            entries.append(bench_native_end_to_end(8192, n_images=4))
            entries.extend(
                bench_thread_scaling(8192, n_images=8, worker_counts=(1, 2, 4))
            )
    _memory_regression_guard(entries)
    _scaling_guard(entries, quick)
    _native_guard(entries, assert_native)
    history = _load_history(output)
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "quick": quick,
            "host": host_context(),
            "entries": [
                {
                    key: entry[key]
                    for key in (
                        "kernel",
                        "stream_length",
                        "speedup",
                        "new_ops_per_sec",
                        "legacy_peak_bytes",
                        "new_peak_bytes",
                        "peak_bytes_ratio",
                        "backend",
                        "baseline_backend",
                        "workers",
                    )
                    if key in entry
                }
                for entry in entries
            ],
        }
    )
    # Keep the newest runs only, so the report stops growing without bound.
    history = history[-history_limit:]
    report = {
        "quick": quick,
        "stream_lengths": list(lengths),
        "host": host_context(),
        "entries": entries,
        "history": history,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output} ({len(history)} run(s) in history)")
    for entry in entries:
        print(
            f"  {entry['kernel']:<22s} N={entry['stream_length']:<6d} "
            f"{entry['speedup']:8.1f}x  "
            f"({entry['new_ops_per_sec'] / 1e6:9.1f} Mops/s)"
        )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="restrict the stream-length grid (CI smoke run)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_perf.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--history-limit",
        type=int,
        default=DEFAULT_HISTORY_LIMIT,
        help="maximum runs kept in the report's accumulating history list",
    )
    parser.add_argument(
        "--assert-native",
        action="store_true",
        help="fail unless the compiled tier is available and beats the "
        "NumPy fused-counts kernel by >= 2x (CI native smoke guard)",
    )
    args = parser.parse_args(argv)
    # Fail on an unwritable report path before spending minutes measuring.
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.touch()
    run(
        args.quick,
        args.output,
        history_limit=args.history_limit,
        assert_native=args.assert_native,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
