"""Table 5: feature-extraction block hardware utilisation (AQFP vs CMOS)."""

import pytest

from repro.eval.hardware_report import PAPER_TABLE5_SIZES, table5_feature_extraction
from repro.eval.tables import format_table

HEADERS = [
    "Size",
    "AQFP E (pJ)",
    "CMOS E (pJ)",
    "E ratio",
    "AQFP delay (ns)",
    "CMOS delay (ns)",
    "Speedup",
]


@pytest.mark.paper_table("Table 5")
def test_table5_feature_extraction_hardware(benchmark):
    rows = benchmark.pedantic(
        table5_feature_extraction, args=(PAPER_TABLE5_SIZES,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            HEADERS,
            [row.as_row() for row in rows],
            title="Table 5: feature-extraction block hardware utilisation",
        )
    )
    assert all(row.energy_ratio > 1e3 for row in rows)
    # Energy grows with input size on both platforms.
    energies = [row.aqfp.energy_pj for row in rows]
    assert energies == sorted(energies)
