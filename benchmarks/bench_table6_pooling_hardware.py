"""Table 6: sub-sampling (average pooling) block hardware utilisation."""

import pytest

from repro.eval.hardware_report import PAPER_TABLE6_SIZES, table6_pooling
from repro.eval.tables import format_table

HEADERS = [
    "Size",
    "AQFP E (pJ)",
    "CMOS E (pJ)",
    "E ratio",
    "AQFP delay (ns)",
    "CMOS delay (ns)",
    "Speedup",
]


@pytest.mark.paper_table("Table 6")
def test_table6_pooling_hardware(benchmark):
    rows = benchmark(table6_pooling, PAPER_TABLE6_SIZES)
    print()
    print(
        format_table(
            HEADERS,
            [row.as_row() for row in rows],
            title="Table 6: sub-sampling block hardware utilisation",
        )
    )
    assert all(row.energy_ratio > 1e3 for row in rows)
    assert all(row.speedup > 10 for row in rows)
