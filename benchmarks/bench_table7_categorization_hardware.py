"""Table 7: categorization block hardware utilisation (AQFP vs CMOS)."""

import pytest

from repro.eval.hardware_report import PAPER_TABLE7_SIZES, table7_categorization
from repro.eval.tables import format_table

HEADERS = [
    "Size",
    "AQFP E (pJ)",
    "CMOS E (pJ)",
    "E ratio",
    "AQFP delay (ns)",
    "CMOS delay (ns)",
    "Speedup",
]


@pytest.mark.paper_table("Table 7")
def test_table7_categorization_hardware(benchmark):
    rows = benchmark(table7_categorization, PAPER_TABLE7_SIZES)
    print()
    print(
        format_table(
            HEADERS,
            [row.as_row() for row in rows],
            title="Table 7: categorization block hardware utilisation",
        )
    )
    assert all(row.energy_ratio > 1e4 for row in rows)
    # The majority chain grows linearly, so energy scales roughly with size.
    growth = rows[-1].aqfp.energy_pj / rows[0].aqfp.energy_pj
    size_growth = PAPER_TABLE7_SIZES[-1] / PAPER_TABLE7_SIZES[0]
    assert 0.3 * size_growth < growth < 3 * size_growth
