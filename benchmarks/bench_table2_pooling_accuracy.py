"""Table 2: absolute inaccuracy of the sorter-based average-pooling block."""

import pytest

from repro.eval.block_accuracy import table2_pooling
from repro.eval.tables import format_table

INPUT_SIZES = (4, 9, 16, 25, 36)


@pytest.mark.paper_table("Table 2")
def test_table2_pooling_accuracy(benchmark, quick_stream_lengths):
    table = benchmark.pedantic(
        table2_pooling,
        kwargs={
            "input_sizes": INPUT_SIZES,
            "stream_lengths": quick_stream_lengths,
            "trials": 10,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [size] + [table[size][length] for length in quick_stream_lengths]
        for size in INPUT_SIZES
    ]
    print()
    print(
        format_table(
            ["Input size"] + [str(n) for n in quick_stream_lengths],
            rows,
            title="Table 2: average-pooling block absolute inaccuracy",
        )
    )
    # The paper reports inaccuracy below 0.03 everywhere; allow slack for the
    # reduced trial count but keep the same order of magnitude.
    assert all(
        table[size][1024] < 0.05 for size in INPUT_SIZES
    ), "pooling block inaccuracy should be far below 0.05 at N=1024"
