#!/usr/bin/env python
"""Serving benchmark: micro-batching load sweep + early-exit cycle savings.

Drives the full serving stack (:mod:`repro.serve`) against the synthetic
MNIST test set and writes ``BENCH_serve.json``.  The served network is a
**model artifact** (:class:`repro.api.ScModel`): the first run trains it
once and saves it next to the report; every run -- including the first --
then loads the artifact back and serves the loaded model, exercising the
train-once / deploy-forever path end to end (pass ``--artifact`` to
relocate it, delete the directory to retrain).  Sections:

* **early exit** -- a network is trained, then evaluated at the
  progressive stream-length checkpoints (``N/8, N/4, N/2, N`` at
  ``N = 1024``); the report records the mean exit checkpoint, the mean
  stream-cycle reduction (asserted >= 1.5x), and that accuracy is
  unchanged versus the full-stream evaluation.
* **bit-exact spot check** -- the word-packed backend's prefix-popcount
  checkpoints are asserted to reproduce the full-stream scores exactly at
  the final checkpoint, with early-exit predictions matching the
  full-stream predictions.
* **offered-load sweep** -- a load generator submits single-image
  requests at several offered rates through the micro-batching service
  and records p50/p95/p99 latency, throughput and micro-batch sizes.
* **cache** -- repeated traffic against the LRU result cache, reporting
  the hit rate.

* **observability** -- a burst at ``trace_sample_rate=1.0`` asserting
  that every response carries a trace whose queue + service split prices
  the measured latency exactly, that the Prometheus exposition of the
  service snapshot parses cleanly, and an **overhead guard**: p99
  latency with sampling at 0.01 must stay within 5% of sampling off
  (best of several attempts, so a single noisy run cannot fail CI).
* **fault sweep** (``--faults``) -- a fault-free baseline burst asserting
  *zero SLO violations* (no request shed, failed or unresolved), then a
  burst under an injected replica crash, straggler and poisoned batch
  (:mod:`repro.serve.faults`) asserting the supervision accounting:
  every future resolves, the crash restarts the replica and the retried
  batch succeeds, the poison surfaces as typed failures.
* **fleet sweep** (``--fleet``) -- the multi-process
  :class:`~repro.serve.FleetRouter` under the same discipline: burst
  throughput against 1/2/4 worker processes, client-observed p99 while
  every worker is rolled (zero drops asserted), and SLO accounting under
  an injected :class:`~repro.serve.WorkerKill` (every future resolves,
  the death is restarted, stranded requests retried).  Skipped cleanly
  on hosts with fewer than 4 CPUs.
* **http sweep** (``--http``) -- the network front end
  (:class:`~repro.serve.ScHttpServer` over a
  :class:`~repro.serve.ModelRegistry`): an *open-loop* load generator
  fires requests at pre-computed absolute arrival times (arrivals never
  wait for responses, so a slow server faces a growing backlog exactly
  like production traffic) under a **burst** trace (base rate with
  periodic 5x bursts) and a **diurnal** trace (sinusoidally modulated
  rate), recording client-observed p50/p95/p99 over the wire; then an
  **overhead guard**: p99 over HTTP on a steady trace must stay within
  ``MAX_HTTP_OVERHEAD`` (10%) of the identical trace driven in-process
  through ``ScInferenceService.submit`` (best of several attempts).
  The ``/metrics`` exposition is scraped over the wire and golden-parsed.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] [--faults]
        [--fleet] [--http] [--output PATH]

``--smoke`` (alias ``--quick``) shrinks the training budget and the load
burst (used by the CI smoke jobs and ``tests/test_serve.py``); the
early-exit acceptance thresholds are asserted in both modes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import ScModel
from repro.backends import create_backend
from repro.cli import tiny_serving_specs
from repro.config import ServiceConfig
from repro.datasets import generate_digit_dataset
from repro.nn import Trainer, TrainingConfig
from repro.nn.architectures import build_network
from repro.serve import ScInferenceService, progressive_forward, resolve_checkpoints

REPO_ROOT = Path(__file__).resolve().parent.parent

STREAM_LENGTH = 1024

#: Early-exit policy used throughout the benchmark (the ServiceConfig
#: defaults, restated here so the report is self-describing).
MARGIN = 0.1
STABLE_CHECKPOINTS = 2

#: Acceptance floor on the mean stream-cycle reduction from early exit.
MIN_CYCLE_REDUCTION = 1.5

#: Overhead guard: p99 latency with trace sampling at 0.01 must stay
#: under this multiple of the sampling-off p99 (best of several runs).
MAX_OBS_OVERHEAD = 1.05

#: HTTP overhead guard: client-observed p99 over the wire must stay
#: under this multiple of the same offered-load trace driven in-process
#: (best of several attempts -- the socket + JSON tax is bounded, but a
#: single noisy scheduler run must not fail CI).
MAX_HTTP_OVERHEAD = 1.10

#: Margin for the bit-exact packed spot check.  Bit-exact prefix scores
#: carry the *actual* decoding noise of short streams (the score quantum
#: at checkpoint N/8 = 128 is already 2/128), so the policy needs a wider
#: confidence gap than the statistical model to keep early predictions
#: glued to the full-stream ones.
PACKED_MARGIN = 0.25


def _train_serving_network(smoke: bool, artifact: Path) -> None:
    """One-time training of the served CNN, exported as a model artifact."""
    n_train, n_test, epochs = (800, 128, 4) if smoke else (2000, 300, 8)
    print(f"dataset: {n_train} train / {n_test} test images")
    dataset = generate_digit_dataset(n_train, n_test, seed=2019)
    network = build_network(
        tiny_serving_specs(),
        activation="hardware",
        seed=5,
        training_stream_length=256,
    )
    trainer = Trainer(network, TrainingConfig(epochs=epochs, seed=1))
    start = time.perf_counter()
    trainer.fit(
        dataset.train_images[:, None] * 2 - 1,
        dataset.train_labels,
        dataset.test_images[:, None] * 2 - 1,
        dataset.test_labels,
        verbose=False,
    )
    print(f"training took {time.perf_counter() - start:.1f} s")
    ScModel(
        network,
        stream_length=STREAM_LENGTH,
        seed=7,
        metadata={
            "arch": "tiny",
            "smoke": smoke,
            "dataset": {"n_train": n_train, "n_test": n_test, "seed": 2019},
            "training": {"epochs": epochs},
        },
    ).save(artifact)
    print(f"saved model artifact to {artifact}")


def _load_served_model(smoke: bool, artifact: Path):
    """The benchmark's model, always loaded from its artifact.

    Training happens at most once per training budget; even a fresh run
    reloads the artifact it just wrote, so the serving sections below
    always execute the load-from-disk path (bit-identical to the trained
    network by the artifact round-trip contract).  An artifact trained
    under the *other* budget (smoke vs full) is retrained rather than
    reused -- the report's thresholds assume its own training budget.
    """
    reused = (artifact / "manifest.json").exists()
    if reused:
        metadata = ScModel.read_manifest(artifact).get("metadata") or {}
        if "smoke" not in metadata:
            # Not one of this benchmark's own artifacts (e.g. a model
            # trained via `python -m repro train`): refuse to overwrite
            # it rather than silently destroying the user's weights.
            raise SystemExit(
                f"{artifact} was not trained by bench_serve (no 'smoke' "
                "marker in its metadata); point --artifact at an empty "
                "path to train the benchmark model there"
            )
        if metadata["smoke"] != smoke:
            print(
                f"artifact {artifact} was trained under a different budget "
                f"(smoke != {smoke}); retraining"
            )
            reused = False
    if not reused:
        _train_serving_network(smoke, artifact)
    else:
        print(f"reusing model artifact {artifact}")
    model = ScModel.load(artifact)
    dataset = generate_digit_dataset(**model.metadata["dataset"])
    return model, dataset.test_images[:, None], dataset.test_labels, reused


def bench_early_exit(mapper, images, labels) -> dict:
    """Progressive early exit on the full test set (fast statistical model)."""
    backend = create_backend("sc-fast", mapper)
    checkpoints = resolve_checkpoints(mapper.stream_length)
    result = progressive_forward(
        backend,
        images,
        checkpoints=checkpoints,
        margin=MARGIN,
        stable_checkpoints=STABLE_CHECKPOINTS,
    )
    full_scores = result.checkpoint_scores[-1]
    full_predictions = np.argmax(full_scores, axis=-1)
    accuracy_full = float((full_predictions == labels).mean())
    accuracy_early = float((result.predictions == labels).mean())
    agreement = float((result.predictions == full_predictions).mean())
    entry = {
        "backend": backend.name,
        "n_images": int(images.shape[0]),
        "stream_length": mapper.stream_length,
        "checkpoints": list(checkpoints),
        "margin": MARGIN,
        "stable_checkpoints": STABLE_CHECKPOINTS,
        "mean_exit_checkpoint": result.mean_exit_checkpoint,
        "cycle_reduction": result.cycle_reduction,
        "exit_histogram": {
            str(p): int((result.exit_checkpoints == p).sum())
            for p in checkpoints
        },
        "accuracy_full": accuracy_full,
        "accuracy_early": accuracy_early,
        "accuracy_unchanged": accuracy_early == accuracy_full,
        "prediction_agreement": agreement,
    }
    print(
        f"  early exit: mean checkpoint {entry['mean_exit_checkpoint']:.0f} / "
        f"{mapper.stream_length} cycles -> {entry['cycle_reduction']:.2f}x "
        f"reduction, accuracy {accuracy_early:.4f} (full {accuracy_full:.4f})"
    )
    assert entry["cycle_reduction"] >= MIN_CYCLE_REDUCTION, (
        f"early exit saved only {entry['cycle_reduction']:.2f}x mean stream "
        f"cycles (acceptance floor {MIN_CYCLE_REDUCTION}x)"
    )
    assert entry["accuracy_unchanged"], (
        f"early exit changed accuracy: {accuracy_early:.4f} vs "
        f"{accuracy_full:.4f} full-stream"
    )
    return entry


def bench_packed_prefix(mapper, images, labels, n_images: int) -> dict:
    """Bit-exact prefix-popcount checkpoints on the packed data plane."""
    backend = create_backend("bit-exact-packed", mapper)
    subset = images[:n_images]
    checkpoints = resolve_checkpoints(mapper.stream_length)
    result = progressive_forward(
        backend,
        subset,
        checkpoints=checkpoints,
        margin=PACKED_MARGIN,
        stable_checkpoints=STABLE_CHECKPOINTS,
    )
    full = backend.forward(subset)
    exact = np.array_equal(result.checkpoint_scores[-1], full)
    predictions_match = bool(
        np.all(result.predictions == np.argmax(full, axis=-1))
    )
    assert exact, "prefix popcount at checkpoint N differs from full decode"
    assert predictions_match, "packed early exit changed a prediction"
    entry = {
        "backend": backend.name,
        "n_images": int(subset.shape[0]),
        "margin": PACKED_MARGIN,
        "last_checkpoint_equals_forward": exact,
        "early_exit_predictions_match_full": predictions_match,
        "mean_exit_checkpoint": result.mean_exit_checkpoint,
        "cycle_reduction": result.cycle_reduction,
    }
    print(
        f"  packed prefix check: {n_images} images bit-exact at N, "
        f"{entry['cycle_reduction']:.2f}x cycle reduction"
    )
    return entry


def bench_load_sweep(mapper, images, offered_rates, n_requests: int) -> list:
    """Submit single-image requests at several offered rates.

    Each rate gets a fresh service (so queue state never leaks between
    sweep points) with the result cache disabled -- the sweep measures
    compute, not memoisation.
    """
    entries = []
    for rate in offered_rates:
        config = ServiceConfig(
            backend="sc-fast",
            max_batch_size=32,
            max_wait_ms=5.0,
            num_workers=2,
            cache_capacity=0,
            early_exit=True,
            margin=MARGIN,
            stable_checkpoints=STABLE_CHECKPOINTS,
        )
        interarrival = 1.0 / rate
        with ScInferenceService(mapper, config) as service:
            futures = []
            start = time.perf_counter()
            for i in range(n_requests):
                futures.append(service.submit(images[i % images.shape[0]]))
                # Pace the offered load (sleep off the schedule drift, not
                # a fixed gap, so bursts behind a slow dispatch catch up).
                target = start + (i + 1) * interarrival
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            for future in futures:
                future.result(timeout=120)
            snapshot = service.metrics.snapshot()
        entry = {
            "offered_rps": rate,
            "requests": n_requests,
            "latency_ms": snapshot["latency_ms"],
            "throughput_images_per_sec": snapshot["throughput_images_per_sec"],
            "mean_batch_size": snapshot["mean_batch_size"],
            "max_batch_size": snapshot["max_batch_size"],
            "mean_exit_checkpoint": snapshot["mean_exit_checkpoint"],
            "queue_time_ms": snapshot["queue_time_ms"],
            "service_time_ms": snapshot["service_time_ms"],
        }
        entries.append(entry)
        print(
            f"  load {rate:6.0f} req/s: p50 {entry['latency_ms']['p50']:7.1f} ms  "
            f"p99 {entry['latency_ms']['p99']:7.1f} ms  "
            f"throughput {entry['throughput_images_per_sec']:7.1f} img/s  "
            f"mean batch {entry['mean_batch_size']:.1f}"
        )
    return entries


def bench_cache(mapper, images, n_unique: int, repeats: int) -> dict:
    """Repeated traffic over a small working set: the LRU cache pays."""
    config = ServiceConfig(
        backend="sc-fast",
        max_batch_size=16,
        max_wait_ms=1.0,
        num_workers=1,
        cache_capacity=256,
    )
    with ScInferenceService(mapper, config) as service:
        for _ in range(repeats):
            futures = [service.submit(images[i]) for i in range(n_unique)]
            for future in futures:
                future.result(timeout=120)
        stats = service.cache.stats()
        snapshot = service.metrics.snapshot()
    expected = (repeats - 1) / repeats
    entry = {
        "unique_images": n_unique,
        "repeats": repeats,
        "hit_rate": stats["hit_rate"],
        "expected_hit_rate": expected,
        "cache_hits": snapshot["cache_hits"],
    }
    print(
        f"  cache: {n_unique} images x {repeats} rounds -> hit rate "
        f"{stats['hit_rate']:.3f} (expected {expected:.3f})"
    )
    assert stats["hit_rate"] == expected, "LRU cache missed repeated traffic"
    return entry


def bench_obs(mapper, images, smoke: bool) -> dict:
    """Observability sweep: trace completeness, exposition, overhead guard.

    Three assertions back the ``repro.obs`` layer:

    * at ``trace_sample_rate=1.0`` **every** response carries a
      :class:`~repro.obs.TraceSummary` whose queue + service split sums
      to the measured latency (same ``perf_counter`` marks, so the match
      is exact up to float rounding);
    * the Prometheus text exposition of the full service snapshot
      (metrics + kernel counters + workspaces + tracer state) passes
      :func:`~repro.obs.validate_exposition`;
    * the **overhead guard**: p99 latency with sampling at the
      production-ish rate 0.01 stays within ``MAX_OBS_OVERHEAD`` of
      sampling off.  Scheduler jitter dwarfs the tracer's cost on any
      single run, so the guard keeps the *best* ratio over a few
      attempts -- the tracer only fails it if it is slow every time.
    """
    from repro.obs import prometheus_text, validate_exposition

    n_requests = 32 if smoke else 96

    def _drive(rate: float):
        config = ServiceConfig(
            backend="sc-fast",
            max_batch_size=16,
            max_wait_ms=2.0,
            num_workers=2,
            cache_capacity=0,
            early_exit=True,
            margin=MARGIN,
            stable_checkpoints=STABLE_CHECKPOINTS,
            trace_sample_rate=rate,
        )
        with ScInferenceService(mapper, config) as service:
            futures = [
                service.submit(images[i % images.shape[0]])
                for i in range(n_requests)
            ]
            responses = [future.result(timeout=120) for future in futures]
            snapshot = service.snapshot()
        return responses, snapshot

    responses, snapshot = _drive(1.0)
    traced = [r for r in responses if r.trace is not None]
    assert len(traced) == n_requests, (
        f"sampling at 1.0 traced only {len(traced)}/{n_requests} requests"
    )
    worst_split = 0.0
    for response in traced:
        trace = response.trace
        split = abs(trace.queue_ms + trace.service_ms - trace.latency_ms)
        worst_split = max(worst_split, split)
        assert split < 1e-6, (
            f"trace {trace.trace_id}: queue {trace.queue_ms} + service "
            f"{trace.service_ms} != latency {trace.latency_ms}"
        )
        assert trace.stages, f"trace {trace.trace_id} recorded no spans"
    families = validate_exposition(prometheus_text(snapshot))
    print(
        f"  tracing: {len(traced)}/{n_requests} responses traced, "
        f"queue+service split exact (worst residue {worst_split:.2e} ms), "
        f"exposition valid ({len(families)} families)"
    )

    attempts = 3 if smoke else 5
    best_ratio = float("inf")
    baseline_p99 = sampled_p99 = None
    for _ in range(attempts):
        _, off = _drive(0.0)
        _, on = _drive(0.01)
        p99_off = off["latency_ms"]["p99"]
        p99_on = on["latency_ms"]["p99"]
        if p99_off <= 0.0:
            continue
        ratio = p99_on / p99_off
        if ratio < best_ratio:
            best_ratio, baseline_p99, sampled_p99 = ratio, p99_off, p99_on
        if best_ratio < MAX_OBS_OVERHEAD:
            break
    print(
        f"  overhead: p99 {baseline_p99:.1f} ms off -> {sampled_p99:.1f} ms "
        f"at rate 0.01 (best ratio {best_ratio:.3f}, "
        f"guard < {MAX_OBS_OVERHEAD})"
    )
    assert best_ratio < MAX_OBS_OVERHEAD, (
        f"tracing at rate 0.01 inflated p99 latency {best_ratio:.3f}x on "
        f"every one of {attempts} attempts (guard {MAX_OBS_OVERHEAD}x)"
    )
    return {
        "requests": n_requests,
        "traced_responses": len(traced),
        "queue_service_split_exact": True,
        "exposition_families": len(families),
        "kernels_observed": sorted(snapshot["kernels"]),
        "tracing": snapshot["tracing"],
        "overhead_guard": {
            "sample_rate": 0.01,
            "attempts": attempts,
            "baseline_p99_ms": baseline_p99,
            "sampled_p99_ms": sampled_p99,
            "best_ratio": best_ratio,
            "max_ratio": MAX_OBS_OVERHEAD,
        },
    }


def bench_faults(mapper, images, smoke: bool) -> dict:
    """Fault sweep: baseline SLO guard, then an injected-fault run.

    The baseline burst runs fault-free and asserts **zero SLO
    violations** (a violation is a request that was shed, failed, or
    never resolved) -- the CI guard that the robustness machinery is
    inert when nothing is failing.  The faulted burst injects a replica
    crash, a straggler and a poisoned batch through a deterministic
    :class:`~repro.serve.FaultPlan` and asserts the supervision
    accounting: every submitted future resolves (result or typed error),
    the crash produced a restart + retry, and the poisoned batch
    produced typed failures -- never a hung client.
    """
    from repro.errors import InferenceError, ServiceOverloadError
    from repro.serve import (
        FaultPlan,
        PoisonedBatch,
        ReplicaCrash,
        SlowReplica,
    )

    n_requests = 32 if smoke else 96

    def _drive(config: ServiceConfig) -> tuple[dict, dict]:
        answered = failed = shed = 0
        with ScInferenceService(mapper, config) as service:
            futures = []
            for i in range(n_requests):
                try:
                    futures.append(service.submit(images[i % images.shape[0]]))
                except ServiceOverloadError:
                    shed += 1
                # Pace the burst so the scheduler forms several small
                # batches instead of two max-size ones -- the fault plan
                # targets batch sequence numbers, so enough execution
                # attempts must happen for every injector to fire.
                if i % 4 == 3:
                    time.sleep(0.005)
            for future in futures:
                try:
                    future.result(timeout=120)
                    answered += 1
                except InferenceError:
                    failed += 1
            snapshot = service.metrics.snapshot()
        accounting = {
            "requests": n_requests,
            "answered": answered,
            "failed": failed,
            "shed_at_submit": shed,
            "unresolved": n_requests - answered - failed - shed,
        }
        return accounting, snapshot

    def _config(plan=None) -> ServiceConfig:
        return ServiceConfig(
            backend="sc-fast",
            max_batch_size=16,
            max_wait_ms=2.0,
            num_workers=2,
            cache_capacity=0,
            early_exit=True,
            margin=MARGIN,
            stable_checkpoints=STABLE_CHECKPOINTS,
            fault_plan=plan,
        )

    baseline_accounting, baseline_snapshot = _drive(_config())
    baseline_violations = (
        baseline_accounting["failed"]
        + baseline_accounting["shed_at_submit"]
        + baseline_accounting["unresolved"]
    )
    print(
        f"  baseline: {baseline_accounting['answered']}/{n_requests} "
        f"answered, {baseline_violations} SLO violations"
    )
    assert baseline_violations == 0, (
        f"fault-free baseline violated its SLO {baseline_violations} "
        f"time(s): {baseline_accounting}"
    )

    plan = FaultPlan(
        ReplicaCrash(at_batch=0),
        SlowReplica(at_batch=2, delay_s=0.02),
        PoisonedBatch(at_batch=4),
        seed=0,
    )
    fault_accounting, fault_snapshot = _drive(_config(plan))
    counters = fault_snapshot["faults"]
    print(
        f"  faulted:  {fault_accounting['answered']}/{n_requests} answered, "
        f"{fault_accounting['failed']} typed failures, "
        f"{counters['restarts']} restart(s), {counters['retries']} retry(ies)"
    )
    assert fault_accounting["unresolved"] == 0, (
        f"futures left unresolved under injected faults: {fault_accounting}"
    )
    assert counters["restarts"] >= 1, "injected crash produced no restart"
    assert counters["retries"] >= 1, "injected crash produced no retry"
    assert fault_accounting["failed"] >= 1, (
        "injected poisoned batch produced no typed failure"
    )
    return {
        "requests_per_run": n_requests,
        "baseline": {
            **baseline_accounting,
            "slo_violations": baseline_violations,
            "latency_ms": baseline_snapshot["latency_ms"],
        },
        "faulted": {
            **fault_accounting,
            "injected": plan.fired,
            "counters": counters,
            "latency_ms": fault_snapshot["latency_ms"],
        },
    }


def bench_fleet(artifact: Path, images, smoke: bool) -> dict:
    """Fleet sweep: worker scaling, rolling-restart tail, kill-burst SLO.

    Three sections against :class:`~repro.serve.FleetRouter` fleets
    rehydrated from the benchmark's model artifact:

    * **scaling** -- the same burst against 1, 2 (and 4) worker
      processes, recording throughput and the per-worker request split;
    * **rolling restart** -- a steady load while every worker is drained
      and replaced in turn, recording client-observed p99 against the
      undisturbed baseline and asserting *zero* dropped or failed
      requests (the zero-downtime redeploy story);
    * **kill burst** -- a burst with an injected :class:`WorkerKill`,
      asserting the SLO accounting: every future resolves, the death is
      restarted within budget, stranded requests are retried, and the
      violation count equals the typed failures (no silent losses).
    """
    import threading

    from repro.config import FleetConfig
    from repro.errors import FleetError, InferenceError, ServiceOverloadError
    from repro.serve import FaultPlan, FleetRouter, WorkerKill

    n_requests = 48 if smoke else 160
    worker_counts = (1, 2) if smoke else (1, 2, 4)

    def _service() -> ServiceConfig:
        return ServiceConfig(
            backend="sc-fast",
            max_batch_size=16,
            max_wait_ms=2.0,
            num_workers=1,
            cache_capacity=0,
            early_exit=True,
            margin=MARGIN,
            stable_checkpoints=STABLE_CHECKPOINTS,
        )

    def _fleet(workers: int, **overrides) -> FleetConfig:
        return FleetConfig(
            num_workers=workers,
            service=_service(),
            heartbeat_interval_ms=100.0,
            heartbeat_misses=15,
            restart_backoff_ms=20.0,
            **overrides,
        )

    def _burst(router, n: int, pace_s: float = 0.0) -> dict:
        """Submit ``n`` requests, resolve all, return SLO accounting."""
        done: list[float] = []
        latencies: list[float] = []
        lock = threading.Lock()
        futures = []
        shed = failed = 0
        started = time.perf_counter()
        for i in range(n):
            t0 = time.perf_counter()

            def _record(future, t0=t0):
                t1 = time.perf_counter()
                with lock:
                    done.append(t1)
                    latencies.append((t1 - t0) * 1e3)

            try:
                future = router.submit(images[i % images.shape[0]])
            except (ServiceOverloadError, FleetError):
                shed += 1
                continue
            future.add_done_callback(_record)
            futures.append(future)
            if pace_s:
                time.sleep(pace_s)
        answered = 0
        for future in futures:
            try:
                future.result(timeout=300)
                answered += 1
            except (InferenceError, FleetError, ServiceOverloadError):
                failed += 1
        elapsed = (max(done) if done else time.perf_counter()) - started
        lat = np.asarray(latencies) if latencies else np.zeros(1)
        return {
            "requests": n,
            "answered": answered,
            "failed": failed,
            "shed_at_submit": shed,
            "unresolved": n - answered - failed - shed,
            "throughput_rps": round(answered / elapsed, 1) if elapsed else 0.0,
            "p50_ms": round(float(np.percentile(lat, 50)), 2),
            "p99_ms": round(float(np.percentile(lat, 99)), 2),
        }

    # -- scaling ---------------------------------------------------------------
    scaling = []
    for workers in worker_counts:
        with FleetRouter(artifact, _fleet(workers)) as router:
            accounting = _burst(router, n_requests)
            snapshot = router.snapshot()
        per_worker = {
            str(slot): (snap or {}).get("requests")
            for slot, snap in snapshot["workers"].items()
        }
        assert accounting["unresolved"] == 0, accounting
        assert accounting["failed"] == 0, accounting
        scaling.append(
            {
                "workers": workers,
                **accounting,
                "per_worker_requests": per_worker,
            }
        )
        print(
            f"  {workers} worker(s): {accounting['throughput_rps']} req/s, "
            f"p99 {accounting['p99_ms']} ms"
        )

    # -- rolling restart -------------------------------------------------------
    pace_s = 0.01 if smoke else 0.005
    with FleetRouter(artifact, _fleet(2)) as router:
        baseline = _burst(router, n_requests, pace_s=pace_s)
        restarter = threading.Thread(target=router.rolling_restart)
        restarter.start()
        rolling = _burst(router, n_requests, pace_s=pace_s)
        restarter.join()
        replacements = router.metrics.snapshot()["replacements"]
    assert baseline["unresolved"] == 0 and baseline["failed"] == 0, baseline
    assert rolling["unresolved"] == 0, rolling
    assert rolling["failed"] == 0, (
        f"rolling restart dropped requests: {rolling}"
    )
    assert replacements == 2, f"expected 2 replacements, got {replacements}"
    print(
        f"  rolling restart: p99 {baseline['p99_ms']} -> "
        f"{rolling['p99_ms']} ms, 0 drops across {replacements} replacements"
    )

    # -- kill burst ------------------------------------------------------------
    plan = FaultPlan(WorkerKill(worker=0, at_batch=4, times=1), seed=0)
    with FleetRouter(
        artifact,
        _fleet(2, fault_plan=plan, max_worker_restarts=2, max_request_retries=4),
    ) as router:
        killed = _burst(router, n_requests)
        fleet_counters = router.metrics.snapshot()
    violations = killed["failed"] + killed["shed_at_submit"] + killed["unresolved"]
    assert killed["unresolved"] == 0, killed
    assert plan.fired.get("worker_kill") == 1, plan.fired
    assert fleet_counters["worker_deaths"] == 1, fleet_counters
    assert fleet_counters["restarts"] == 1, fleet_counters
    assert fleet_counters["retries"] >= 1, fleet_counters
    print(
        f"  kill burst: {killed['answered']}/{n_requests} answered, "
        f"{violations} SLO violations, {fleet_counters['retries']} "
        f"retry(ies) after 1 injected kill"
    )

    return {
        "requests_per_run": n_requests,
        "scaling": scaling,
        "rolling_restart": {
            "baseline": baseline,
            "during_restart": rolling,
            "replacements": replacements,
        },
        "kill_burst": {
            **killed,
            "slo_violations": violations,
            "injected": plan.fired,
            "counters": {
                key: fleet_counters[key]
                for key in ("worker_deaths", "restarts", "retries", "hedges")
            },
        },
    }


def bench_http(artifact: Path, mapper, images, smoke: bool) -> dict:
    """HTTP sweep: open-loop offered-load traces + in-process overhead guard.

    The generator is **open loop**: every arrival time is computed up
    front from the offered-rate profile and each request fires at its
    absolute scheduled instant whether or not earlier requests have
    completed, so the server sees the offered load rather than a
    response-gated echo of its own latency.  Two non-stationary traces
    (periodic 5x bursts; a sinusoidal "diurnal" rate) record the
    client-observed latency distribution over the wire; a steady trace
    is then replayed both over HTTP and directly through
    ``ScInferenceService.submit`` and the p99 ratio must stay under
    :data:`MAX_HTTP_OVERHEAD` (best of several attempts).
    """
    import http.client
    import math
    import threading
    from concurrent.futures import ThreadPoolExecutor

    from repro.config import HttpConfig
    from repro.obs import validate_exposition
    from repro.serve import ModelRegistry, ScHttpServer

    n_requests = 48 if smoke else 160
    base_rps = 60.0 if smoke else 120.0

    def _service_config() -> ServiceConfig:
        return ServiceConfig(
            backend="sc-fast",
            max_batch_size=16,
            max_wait_ms=2.0,
            num_workers=2,
            cache_capacity=0,
            early_exit=True,
            margin=MARGIN,
            stable_checkpoints=STABLE_CHECKPOINTS,
        )

    # -- offered-load profiles (arrival times in seconds from trace start) -----
    def _burst_times(n: int) -> list:
        """Base rate with 5x bursts for the first quarter of each period."""
        times, t = [], 0.0
        period, mult = 0.8, 5.0
        for _ in range(n):
            times.append(t)
            rate = base_rps * (mult if (t % period) < period / 4 else 1.0)
            t += 1.0 / rate
        return times

    def _diurnal_times(n: int) -> list:
        """Sinusoidally modulated rate: a compressed day/night cycle."""
        times, t = [], 0.0
        period, amplitude = 2.0, 0.6
        for _ in range(n):
            times.append(t)
            rate = base_rps * (1.0 + amplitude * math.sin(2 * math.pi * t / period))
            t += 1.0 / rate
        return times

    def _steady_times(n: int) -> list:
        return [i / base_rps for i in range(n)]

    # -- clients ---------------------------------------------------------------
    local = threading.local()
    connections: list = []
    conn_lock = threading.Lock()

    def _connection(port: int) -> http.client.HTTPConnection:
        conn = getattr(local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
            local.conn = conn
            with conn_lock:
                connections.append(conn)
        return conn

    def _drive(times: list, call) -> dict:
        """Fire ``call(i)`` at each absolute arrival time; collect latency."""
        latencies: list = []
        failures = 0
        lock = threading.Lock()
        start = time.perf_counter() + 0.05

        def _fire(item) -> None:
            nonlocal failures
            i, t = item
            delay = start + t - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            t0 = time.perf_counter()
            try:
                ok = call(i)
            except Exception:
                ok = False
            latency = (time.perf_counter() - t0) * 1e3
            with lock:
                latencies.append(latency)
                if not ok:
                    failures += 1

        with ThreadPoolExecutor(max_workers=32) as pool:
            list(pool.map(_fire, enumerate(times)))
        elapsed = time.perf_counter() - start
        lat = np.asarray(latencies) if latencies else np.zeros(1)
        return {
            "requests": len(times),
            "failures": failures,
            "duration_s": round(elapsed, 3),
            "achieved_rps": round(len(times) / elapsed, 1) if elapsed else 0.0,
            "latency_ms": {
                "p50": round(float(np.percentile(lat, 50)), 2),
                "p95": round(float(np.percentile(lat, 95)), 2),
                "p99": round(float(np.percentile(lat, 99)), 2),
            },
        }

    registry = ModelRegistry(models={"bench": artifact}, service=_service_config())
    server = ScHttpServer(registry, HttpConfig(port=0)).start_background()
    try:
        def _http_call(i: int) -> bool:
            conn = _connection(server.port)
            body = json.dumps(
                {"images": [images[i % images.shape[0]].tolist()]}
            )
            try:
                conn.request(
                    "POST",
                    "/v1/models/bench/predict",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                response.read()
            except (http.client.HTTPException, OSError):
                local.conn = None
                raise
            return response.status == 200

        traces = {}
        for name, times in (
            ("burst", _burst_times(n_requests)),
            ("diurnal", _diurnal_times(n_requests)),
        ):
            entry = _drive(times, _http_call)
            assert entry["failures"] == 0, (
                f"{name} trace had {entry['failures']} failed HTTP requests"
            )
            traces[name] = entry
            print(
                f"  {name:7s}: {entry['achieved_rps']:6.1f} req/s achieved  "
                f"p50 {entry['latency_ms']['p50']:7.1f} ms  "
                f"p95 {entry['latency_ms']['p95']:7.1f} ms  "
                f"p99 {entry['latency_ms']['p99']:7.1f} ms"
            )

        # -- overhead guard: identical steady trace, HTTP vs in-process --------
        steady = _steady_times(n_requests)
        attempts = 3 if smoke else 5
        best_ratio = float("inf")
        http_p99 = inproc_p99 = None
        for _ in range(attempts):
            over_http = _drive(steady, _http_call)
            assert over_http["failures"] == 0, over_http
            with ScInferenceService(mapper, _service_config()) as service:
                def _inproc_call(i: int) -> bool:
                    service.submit(
                        images[i % images.shape[0]]
                    ).result(timeout=120)
                    return True

                in_process = _drive(steady, _inproc_call)
            assert in_process["failures"] == 0, in_process
            p99_wire = over_http["latency_ms"]["p99"]
            p99_direct = in_process["latency_ms"]["p99"]
            if p99_direct <= 0.0:
                continue
            ratio = p99_wire / p99_direct
            if ratio < best_ratio:
                best_ratio, http_p99, inproc_p99 = ratio, p99_wire, p99_direct
            if best_ratio < MAX_HTTP_OVERHEAD:
                break
        print(
            f"  overhead: steady {base_rps:.0f} req/s p99 {inproc_p99:.1f} ms "
            f"in-process -> {http_p99:.1f} ms over HTTP (best ratio "
            f"{best_ratio:.3f}, guard < {MAX_HTTP_OVERHEAD})"
        )
        assert best_ratio < MAX_HTTP_OVERHEAD, (
            f"HTTP front end inflated p99 latency {best_ratio:.3f}x over "
            f"in-process on every one of {attempts} attempts "
            f"(guard {MAX_HTTP_OVERHEAD}x)"
        )

        # -- exposition scrape over the wire -----------------------------------
        scrape = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        scrape.request("GET", "/metrics")
        response = scrape.getresponse()
        exposition = response.read().decode()
        scrape.close()
        assert response.status == 200, f"/metrics returned {response.status}"
        families = validate_exposition(exposition)
        print(f"  metrics: exposition scraped and valid ({len(families)} families)")
    finally:
        for conn in connections:
            conn.close()
        server.close()
        registry.close()

    return {
        "endpoint": "/v1/models/bench/predict",
        "requests_per_trace": n_requests,
        "base_offered_rps": base_rps,
        "traces": traces,
        "overhead_guard": {
            "offered_rps": base_rps,
            "attempts": attempts,
            "http_p99_ms": http_p99,
            "inprocess_p99_ms": inproc_p99,
            "best_ratio": round(best_ratio, 4),
            "max_ratio": MAX_HTTP_OVERHEAD,
        },
        "metrics_exposition_families": len(families),
    }


def run(
    smoke: bool,
    output: Path,
    artifact: Path | None = None,
    faults: bool = False,
    fleet: bool = False,
    http: bool = False,
) -> dict:
    if artifact is None:
        artifact = output.parent / (output.stem + "_model")
    model, images, labels, artifact_reused = _load_served_model(smoke, artifact)
    mapper = model.mapper()
    print("early exit (progressive precision):")
    early = bench_early_exit(mapper, images, labels)
    print("packed-prefix bit-exactness:")
    packed = bench_packed_prefix(mapper, images, labels, 2 if smoke else 8)
    print("offered-load sweep (micro-batching service):")
    rates = (200.0,) if smoke else (100.0, 300.0, 1000.0)
    sweep = bench_load_sweep(mapper, images, rates, 48 if smoke else 192)
    print("result cache:")
    cache = bench_cache(mapper, images, n_unique=16, repeats=3)
    print("observability (tracing + exposition + overhead guard):")
    observability = bench_obs(mapper, images, smoke)
    report = {
        "smoke": smoke,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "stream_length": STREAM_LENGTH,
        "artifact": str(artifact),
        "artifact_reused": artifact_reused,
        "early_exit": early,
        "packed_prefix": packed,
        "load_sweep": sweep,
        "cache": cache,
        "observability": observability,
    }
    if faults:
        print("fault sweep (SLO-violation accounting):")
        report["fault_sweep"] = bench_faults(mapper, images, smoke)
    if fleet:
        cpus = os.cpu_count() or 1
        if cpus < 4:
            # Worker processes + the router need real parallelism; on a
            # tiny host the scaling numbers would only measure contention.
            print(f"fleet sweep skipped: host has {cpus} CPU(s), need >= 4")
            report["fleet"] = {"skipped": f"host has {cpus} CPUs, need >= 4"}
        else:
            print("fleet sweep (worker scaling, rolling restart, kill burst):")
            report["fleet"] = bench_fleet(artifact, images, smoke)
    if http:
        print("http front end (open-loop traces + overhead guard):")
        report["http"] = bench_http(artifact, mapper, images, smoke)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output}")
    print(
        f"  headline: {early['cycle_reduction']:.2f}x mean stream-cycle "
        f"reduction at N={STREAM_LENGTH}, accuracy "
        f"{early['accuracy_early']:.4f} unchanged"
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small training budget and load burst (CI smoke run)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        dest="smoke",
        help="alias for --smoke",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="run the fault sweep: a fault-free baseline asserting zero "
        "SLO violations, then an injected crash/straggler/poison burst "
        "with supervision accounting",
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="run the multi-process fleet sweep: throughput scaling vs "
        "worker count, p99 during a rolling restart, and SLO accounting "
        "under an injected WorkerKill burst (skipped on hosts with < 4 "
        "CPUs)",
    )
    parser.add_argument(
        "--http",
        action="store_true",
        help="run the HTTP front-end sweep: open-loop burst and diurnal "
        "offered-load traces against the network endpoint with "
        "client-observed percentiles, plus an HTTP-vs-in-process p99 "
        "overhead guard and a /metrics golden-parse over the wire",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_serve.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--artifact",
        type=Path,
        default=None,
        help="model artifact directory (default: <output>_model next to the "
        "report; trained and saved on first run, reused afterwards)",
    )
    args = parser.parse_args(argv)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.touch()
    run(
        args.smoke,
        args.output,
        args.artifact,
        faults=args.faults,
        fleet=args.fleet,
        http=args.http,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
