"""Table 8: layer configuration of the evaluated networks (configuration check)."""

import pytest

from repro.eval.network_report import table8_configuration
from repro.eval.tables import format_table


@pytest.mark.paper_table("Table 8")
def test_table8_architectures(benchmark):
    rows = benchmark(table8_configuration)
    print()
    print(
        format_table(
            ["Network", "Layer", "Kind", "Kernel", "Channels", "Units", "Stride"],
            [
                [r["network"], r["layer"], r["kind"], r["kernel"], r["channels"], r["units"], r["stride"]]
                for r in rows
            ],
            title="Table 8: DNN layer configuration",
        )
    )
    snn_layers = [r for r in rows if r["network"] == "SNN"]
    dnn_layers = [r for r in rows if r["network"] == "DNN"]
    assert len(snn_layers) == 7
    assert len(dnn_layers) == 10
    assert all(r["channels"] == 32 for r in rows if r["layer"] == "Conv3_x")
    assert all(r["kernel"] == 7 for r in rows if r["layer"] == "Conv7_x")
