"""Shared benchmark configuration.

Every benchmark prints the table/figure it reproduces (in the paper's
row/column layout) in addition to timing the experiment, so running
``pytest benchmarks/ --benchmark-only -s`` regenerates the full evaluation.
Sizes are reduced relative to the paper where a full-size run would take
minutes; EXPERIMENTS.md records the full-size numbers.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "paper_table(name): paper table/figure reproduced")


@pytest.fixture(scope="session")
def quick_stream_lengths():
    """Reduced stream-length grid used by the accuracy benchmarks."""
    return (128, 256, 512, 1024)
