"""Table 3: relative top-1 inaccuracy of the majority-chain categorization block."""

import pytest

from repro.eval.block_accuracy import table3_categorization
from repro.eval.tables import format_table

INPUT_SIZES = (100, 200, 500)
STREAM_LENGTHS = (128, 512, 1024)


@pytest.mark.paper_table("Table 3")
def test_table3_categorization_accuracy(benchmark):
    table = benchmark.pedantic(
        table3_categorization,
        kwargs={
            "input_sizes": INPUT_SIZES,
            "stream_lengths": STREAM_LENGTHS,
            "trials": 4,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [size] + [table[size][length] for length in STREAM_LENGTHS]
        for size in INPUT_SIZES
    ]
    print()
    print(
        format_table(
            ["Input size"] + [str(n) for n in STREAM_LENGTHS],
            rows,
            title="Table 3: categorization block relative top-1 inaccuracy",
        )
    )
    assert all(0.0 <= table[s][n] <= 1.0 for s in INPUT_SIZES for n in STREAM_LENGTHS)
