"""Table 4: stochastic number generator hardware utilisation (AQFP vs CMOS)."""

import pytest

from repro.eval.hardware_report import PAPER_TABLE4_SIZES, table4_sng
from repro.eval.tables import format_table

HEADERS = [
    "Size",
    "AQFP E (pJ)",
    "CMOS E (pJ)",
    "E ratio",
    "AQFP delay (ns)",
    "CMOS delay (ns)",
    "Speedup",
]


@pytest.mark.paper_table("Table 4")
def test_table4_sng_hardware(benchmark):
    rows = benchmark(table4_sng, PAPER_TABLE4_SIZES)
    print()
    print(
        format_table(
            HEADERS,
            [row.as_row() for row in rows],
            title="Table 4: SNG hardware utilisation",
        )
    )
    # Shape check: AQFP wins by several orders of magnitude and the gap is
    # roughly constant across sizes (both sides scale linearly).
    assert all(row.energy_ratio > 1e4 for row in rows)
