"""Table 9: network accuracy / energy / throughput (software vs CMOS vs AQFP).

Training uses a reduced budget so the benchmark completes in minutes; the
paper-scale run (full dataset, more epochs) is described in EXPERIMENTS.md
and reachable through ``examples/mnist_sc_inference.py``.
"""

import pytest

from repro.eval.network_report import table9_networks
from repro.eval.tables import format_table


@pytest.mark.paper_table("Table 9")
def test_table9_network_performance(benchmark):
    reports = benchmark.pedantic(
        table9_networks,
        kwargs={
            "networks": ("SNN",),
            "n_train": 800,
            "n_test": 200,
            "epochs": 3,
            "stream_length": 1024,
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for report in reports:
        rows.append([report.network, "Software", report.software_accuracy, "-", "-"])
        rows.append(
            [
                report.network,
                "CMOS",
                report.cmos_accuracy,
                report.cmos.energy_uj_per_image,
                report.cmos.throughput_images_per_ms,
            ]
        )
        rows.append(
            [
                report.network,
                "AQFP",
                report.aqfp_accuracy,
                report.aqfp.energy_uj_per_image,
                report.aqfp.throughput_images_per_ms,
            ]
        )
    print()
    print(
        format_table(
            ["Network", "Platform", "Accuracy", "Energy (uJ)", "Throughput (img/ms)"],
            rows,
            title="Table 9: network performance comparison (reduced training budget)",
        )
    )
    for report in reports:
        assert report.software_accuracy > 0.8
        assert report.aqfp_accuracy > 0.7
        # The headline claims: orders-of-magnitude energy advantage and a
        # clear throughput advantage for AQFP over the CMOS SC baseline.
        assert report.energy_ratio > 1e3
        assert report.throughput_ratio > 1.0
