"""Fig. 7(b): output distribution of the AQFP buffer true RNG."""

import pytest

from repro.eval.figures import fig7_rng_distribution
from repro.eval.tables import format_table


@pytest.mark.paper_table("Figure 7b")
def test_fig7_rng_distribution(benchmark):
    result = benchmark(fig7_rng_distribution, 200_000)
    print()
    print(
        format_table(
            ["Outcome", "Fraction"],
            [["0", result["zeros"]], ["1", result["ones"]]],
            title="Figure 7(b): AQFP TRNG output distribution",
        )
    )
    assert abs(result["ones"] - 0.5) < 0.01
