"""Reproduce the block-accuracy sweeps of Tables 1-3.

Sweeps input size and bit-stream length for the three proposed blocks and
prints the tables in the paper's layout.

Run with:  python examples/block_accuracy_sweep.py [--trials N]
"""

import argparse

from repro.eval.block_accuracy import (
    table1_feature_extraction,
    table2_pooling,
    table3_categorization,
)
from repro.eval.tables import format_table


def _print_sweep(table: dict, title: str) -> None:
    lengths = sorted(next(iter(table.values())))
    rows = [[size] + [table[size][length] for length in lengths] for size in sorted(table)]
    print()
    print(format_table(["Input size"] + [str(n) for n in lengths], rows, title=title))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--stream-lengths", type=int, nargs="+", default=[128, 256, 512, 1024])
    args = parser.parse_args()
    lengths = tuple(args.stream_lengths)

    _print_sweep(
        table1_feature_extraction(stream_lengths=lengths, trials=args.trials),
        "Table 1: feature-extraction block absolute inaccuracy",
    )
    _print_sweep(
        table2_pooling(stream_lengths=lengths, trials=args.trials),
        "Table 2: average-pooling block absolute inaccuracy",
    )
    _print_sweep(
        table3_categorization(
            input_sizes=(100, 200, 500), stream_lengths=lengths, trials=max(3, args.trials // 3)
        ),
        "Table 3: categorization block relative top-1 inaccuracy",
    )


if __name__ == "__main__":
    main()
