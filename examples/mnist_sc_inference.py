"""Application-level reproduction: digit classification with the SC/AQFP network.

Trains the paper's SNN (Table 8) on the synthetic MNIST-like digit dataset
with SC-aware training (hardware transfer-curve activations, stream-noise
injection, weight clipping), then evaluates:

* floating-point (software) accuracy,
* the fast statistical SC model with stream noise,
* a bit-exact SC simulation of a few test images through the actual blocks,
* the Table 9 style hardware roll-up (energy per image, throughput).

Run with:  python examples/mnist_sc_inference.py [--quick]
"""

import argparse
import time

from repro.datasets import generate_digit_dataset
from repro.eval.network_report import network_hardware_rollup
from repro.eval.tables import format_table
from repro.nn import ScInferenceEngine, Trainer, TrainingConfig, build_snn


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a tiny training budget")
    parser.add_argument("--stream-length", type=int, default=1024)
    parser.add_argument("--epochs", type=int, default=None)
    args = parser.parse_args()

    n_train, n_test = (800, 200) if args.quick else (3000, 600)
    epochs = args.epochs or (2 if args.quick else 5)

    print(f"generating dataset ({n_train} train / {n_test} test images)...")
    dataset = generate_digit_dataset(n_train, n_test, seed=2019)

    print("building and training the SNN (SC-aware training)...")
    network = build_snn(seed=1, training_stream_length=args.stream_length)
    trainer = Trainer(network, TrainingConfig(epochs=epochs, seed=1))
    start = time.time()
    trainer.fit(
        dataset.train_images[:, None] * 2 - 1,
        dataset.train_labels,
        dataset.test_images[:, None] * 2 - 1,
        dataset.test_labels,
        verbose=True,
    )
    print(f"training took {time.time() - start:.1f} s")

    engine = ScInferenceEngine(network, stream_length=args.stream_length, seed=3)
    test_images = dataset.test_images[:, None]
    float_result = engine.evaluate_float(test_images, dataset.test_labels)
    fast_result = engine.evaluate_sc_fast(test_images, dataset.test_labels)
    bit_exact = engine.evaluate_sc_bit_exact(
        test_images, dataset.test_labels, max_images=2, position_chunk=24
    )

    aqfp, cmos = network_hardware_rollup(
        engine.layer_inventories(), stream_length=args.stream_length
    )
    print()
    print(
        format_table(
            ["Platform", "Accuracy", "Energy (uJ/image)", "Throughput (img/ms)"],
            [
                ["Software (float)", float_result.accuracy, "-", "-"],
                ["CMOS SC", fast_result.accuracy, cmos.energy_uj_per_image, cmos.throughput_images_per_ms],
                ["AQFP SC", fast_result.accuracy, aqfp.energy_uj_per_image, aqfp.throughput_images_per_ms],
                [f"AQFP bit-exact ({bit_exact.n_images} images)", bit_exact.accuracy, "-", "-"],
            ],
            title="Table 9 style network comparison (SNN)",
        )
    )
    print(f"energy-efficiency gain AQFP vs CMOS: "
          f"{cmos.energy_uj_per_image / aqfp.energy_uj_per_image:.2e}x")


if __name__ == "__main__":
    main()
