"""Application-level reproduction: digit classification with the SC/AQFP network.

Trains the paper's SNN (Table 8) on the synthetic MNIST-like digit dataset
with SC-aware training (hardware transfer-curve activations, stream-noise
injection, weight clipping), then evaluates through the unified Session
facade (:mod:`repro.api`):

* floating-point (software) accuracy,
* the fast statistical SC model with stream noise,
* a bit-exact SC simulation of test images through the actual blocks,
  using any registered execution backend (``--backend``; the default
  word-packed data plane simulates 16 images comfortably),
* the Table 9 style hardware roll-up (energy per image, throughput).

``--save-model PATH`` additionally exports the trained network as a
versioned model artifact, ready for ``python -m repro predict/serve`` or
``Session.from_artifact`` -- train once, deploy forever.

Run with:  python examples/mnist_sc_inference.py [--quick] [--backend NAME]
"""

import argparse
import time

from repro.api import Session
from repro.cli import add_backend_arguments, backend_epilog, backend_selection
from repro.datasets import generate_digit_dataset
from repro.eval.network_report import network_hardware_rollup
from repro.eval.tables import format_table
from repro.nn import Trainer, TrainingConfig, build_snn


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog=backend_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--quick", action="store_true", help="use a tiny training budget")
    parser.add_argument("--epochs", type=int, default=None)
    add_backend_arguments(
        parser,
        default="bit-exact-packed",
        capability="bit_exact",
        include_stream_length=True,
        backend_help="execution backend for the bit-exact validation rows",
    )
    parser.add_argument(
        "--bit-exact-images",
        type=int,
        default=None,
        help="images simulated bit-exactly (default: 2 legacy-sized, 16 packed/batched)",
    )
    parser.add_argument(
        "--save-model",
        default=None,
        help="export the trained network as a model artifact directory",
    )
    args = parser.parse_args()
    # With --workers > 1 the chosen backend rides along as the parallel
    # wrapper's inner backend (shared policy in repro.backends).
    backend_name, backend_options = backend_selection(args)

    n_train, n_test = (800, 200) if args.quick else (3000, 600)
    epochs = args.epochs or (2 if args.quick else 5)

    print(f"generating dataset ({n_train} train / {n_test} test images)...")
    dataset = generate_digit_dataset(n_train, n_test, seed=2019)

    print("building and training the SNN (SC-aware training)...")
    network = build_snn(seed=1, training_stream_length=args.stream_length)
    trainer = Trainer(network, TrainingConfig(epochs=epochs, seed=1))
    start = time.time()
    trainer.fit(
        dataset.train_images[:, None] * 2 - 1,
        dataset.train_labels,
        dataset.test_images[:, None] * 2 - 1,
        dataset.test_labels,
        verbose=True,
    )
    print(f"training took {time.time() - start:.1f} s")

    session = Session.from_network(
        network,
        stream_length=args.stream_length,
        seed=3,
        metadata={
            "arch": "snn",
            "dataset": {"n_train": n_train, "n_test": n_test, "seed": 2019},
        },
    )
    if args.save_model:
        print(f"saving model artifact to {session.save(args.save_model)}")
    test_images = dataset.test_images[:, None]
    # Every evaluation selects its execution backend through the registry.
    float_result = session.evaluate(test_images, dataset.test_labels, backend="float")
    fast_result = session.evaluate(test_images, dataset.test_labels, backend="sc-fast")
    if args.bit_exact_images is not None:
        n_bit_exact = args.bit_exact_images
    else:
        n_bit_exact = 2 if args.backend == "bit-exact-legacy" else 16
    bit_exact = session.evaluate(
        test_images,
        dataset.test_labels,
        backend=backend_name,
        max_images=n_bit_exact,
        **backend_options,
    )

    aqfp, cmos = network_hardware_rollup(
        session.mapper.layer_inventories(), stream_length=args.stream_length
    )
    print()
    print(
        format_table(
            ["Platform", "Accuracy", "Energy (uJ/image)", "Throughput (img/ms)"],
            [
                ["Software (float)", float_result.accuracy, "-", "-"],
                ["CMOS SC", fast_result.accuracy, cmos.energy_uj_per_image, cmos.throughput_images_per_ms],
                ["AQFP SC", fast_result.accuracy, aqfp.energy_uj_per_image, aqfp.throughput_images_per_ms],
                [
                    f"AQFP {bit_exact.mode} ({bit_exact.n_images} images)",
                    bit_exact.accuracy,
                    "-",
                    "-",
                ],
            ],
            title="Table 9 style network comparison (SNN)",
        )
    )
    print(f"energy-efficiency gain AQFP vs CMOS: "
          f"{cmos.energy_uj_per_image / aqfp.energy_uj_per_image:.2e}x")


if __name__ == "__main__":
    main()
