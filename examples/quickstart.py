"""Quickstart: stochastic computing on AQFP in five minutes.

Demonstrates the lowest layers of the stack: generate stochastic numbers
with the AQFP true-RNG-backed SNG, multiply them with an XNOR gate, push
them through the paper's three proposed blocks, and cost each block in AQFP
versus 40 nm CMOS.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.aqfp import AqfpTechnology
from repro.blocks import (
    MajorityChainCategorizationBlock,
    SngBlock,
    SorterAveragePoolingBlock,
    SorterFeatureExtractionBlock,
)
from repro.cmos.sc_blocks import cmos_apc_feature_extraction_cost
from repro.eval.tables import format_table
from repro.sc import xnor_multiply


def main() -> None:
    stream_length = 1024
    technology = AqfpTechnology()

    # 1. Stochastic number generation from the shared true-RNG matrix.
    values = np.array([0.5, -0.25, 0.75, -0.8, 0.1, 0.3, -0.6, 0.9, -0.4])
    weights = np.array([0.3, 0.8, -0.5, -0.9, 0.2, -0.7, 0.6, 0.4, -0.1])
    value_sng = SngBlock(len(values), n_bits=10, seed=1)
    weight_sng = SngBlock(len(weights), n_bits=10, seed=2)
    value_stream = value_sng.generate(values, stream_length)
    weight_stream = weight_sng.generate(weights, stream_length)
    print("decoded SNG outputs:", np.round(value_stream.to_values(), 3))

    # 2. Bipolar multiplication is a single XNOR gate per stream.
    product = xnor_multiply(value_stream.select(0), weight_stream.select(0))
    print(
        f"XNOR multiply: {values[0]:+.2f} * {weights[0]:+.2f} "
        f"= {float(product.to_values()):+.3f} (exact {values[0] * weights[0]:+.3f})"
    )

    # 3. The sorter-based feature-extraction block fuses the inner product
    #    with a clipped activation -- no accumulator needed.
    feature_block = SorterFeatureExtractionBlock(len(values))
    activated = feature_block.forward(value_stream, weight_stream)
    print(
        "feature extraction:",
        f"decoded {float(activated.to_values()):+.3f}",
        f"(ideal clip {np.clip((values * weights).sum(), -1, 1):+.3f})",
    )

    # 4. Average pooling and categorization blocks.
    pooled = SorterAveragePoolingBlock(4).forward(value_stream.bits[:4])
    print(
        "average pooling:",
        f"decoded {float(pooled.to_values()):+.3f}",
        f"(exact {values[:4].mean():+.3f})",
    )
    chain = MajorityChainCategorizationBlock(len(values))
    print("categorization chain output value:", float(chain.forward(value_stream, weight_stream).to_values()))

    # 5. Hardware cost: AQFP versus the CMOS SC baseline.
    aqfp_cost = feature_block.hardware().cost(technology, stream_length)
    cmos_cost = cmos_apc_feature_extraction_cost(len(values), stream_length=stream_length)
    print()
    print(
        format_table(
            ["Platform", "JJ / gates", "Energy (pJ)", "Delay (ns)"],
            [
                ["AQFP", aqfp_cost.jj_count, aqfp_cost.energy_pj, aqfp_cost.latency_ns],
                ["CMOS 40nm", cmos_cost.jj_count, cmos_cost.energy_pj, cmos_cost.latency_ns],
            ],
            title="Feature-extraction block (9 inputs, 1024-bit streams)",
        )
    )
    print(f"energy-efficiency gain: {cmos_cost.energy_pj / aqfp_cost.energy_pj:.2e}x")


if __name__ == "__main__":
    main()
