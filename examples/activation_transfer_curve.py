"""Reproduce Fig. 13: the feature-extraction block's activation transfer curve.

Prints the measured block output versus the ideal clip of equation (1) as an
ASCII plot plus the underlying data series (no plotting dependency needed).

Run with:  python examples/activation_transfer_curve.py
"""

import numpy as np

from repro.eval.figures import fig13_activation_curve
from repro.eval.tables import format_table


def ascii_plot(x: np.ndarray, y: np.ndarray, width: int = 61, height: int = 17) -> str:
    """Minimal ASCII scatter plot of y(x) for terminals."""
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int((xi - x.min()) / (x.max() - x.min()) * (width - 1))
        row = int((1.0 - (yi + 1.0) / 2.0) * (height - 1))
        grid[min(max(row, 0), height - 1)][col] = "*"
    lines = ["".join(row) for row in grid]
    return "\n".join(lines)


def main() -> None:
    data = fig13_activation_curve(n_inputs=25, stream_length=4096, n_points=61)
    print("Figure 13: activated output of the feature-extraction block (M=25)")
    print(ascii_plot(data["inner_product"], data["block_output"]))
    print()
    rows = [
        [z, y, c]
        for z, y, c in zip(
            data["inner_product"][::6], data["block_output"][::6], data["ideal_clip"][::6]
        )
    ]
    print(format_table(["Inner product", "Block output", "Ideal clip"], rows))


if __name__ == "__main__":
    main()
