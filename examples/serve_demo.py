"""Serving walkthrough: micro-batching, early exit, and the result cache.

Trains a small CNN on the synthetic digit dataset, stands up the
micro-batching inference service (:mod:`repro.serve`), and pushes a burst
of single-image requests through it:

* requests submitted together are coalesced into merged batches by the
  scheduler (watch the mean batch size),
* confidently classified images early-exit at a fraction of the stream
  length (watch the exit checkpoints and the cycle reduction),
* repeated images are answered from the LRU cache without spending a
  single stream cycle (watch the hit rate).

Run with:  python examples/serve_demo.py [--backend NAME] [--stream-length N]
"""

import argparse

import numpy as np

from repro.backends import (
    backend_class,
    backend_names,
    describe_backends,
    resolve_parallel_backend,
)
from repro.config import ServiceConfig
from repro.datasets import generate_digit_dataset
from repro.eval.tables import format_table
from repro.nn import Trainer, TrainingConfig
from repro.nn.architectures import LayerSpec, build_network
from repro.nn.sc_layers import ScNetworkMapper
from repro.serve import ScInferenceService


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog="available backends:\n" + describe_backends(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--backend",
        choices=[n for n in backend_names() if backend_class(n).progressive],
        default="sc-fast",
        help="progressive execution backend the worker replicas run",
    )
    parser.add_argument("--stream-length", type=int, default=1024)
    parser.add_argument(
        "--requests", type=int, default=32, help="single-image requests to submit"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="serve through the process-sharded packed backend "
        "('bit-exact-packed-mp' from the registry) with this many worker "
        "processes behind a single service worker thread",
    )
    args = parser.parse_args()

    print("training a small CNN on the synthetic digit dataset...")
    dataset = generate_digit_dataset(800, 128, seed=2019)
    specs = [
        LayerSpec(kind="conv", name="Conv3_x", kernel=3, channels=8),
        LayerSpec(kind="pool", name="AvgPool", kernel=4, stride=4),
        LayerSpec(kind="fc", name="FC64", units=64),
        LayerSpec(kind="output", name="OutLayer", units=10),
    ]
    network = build_network(
        specs, activation="hardware", seed=5, training_stream_length=256
    )
    Trainer(network, TrainingConfig(epochs=4, seed=1)).fit(
        dataset.train_images[:, None] * 2 - 1,
        dataset.train_labels,
        dataset.test_images[:, None] * 2 - 1,
        dataset.test_labels,
        verbose=False,
    )

    mapper = ScNetworkMapper(network, stream_length=args.stream_length, seed=7)
    # With --workers > 1: one service worker thread whose replica shards
    # each merged batch across a process pool (identical scores, more
    # cores).  The chosen backend rides along as the inner backend when
    # it can shard; sc-fast is not batch-invariant, so the shared policy
    # falls back to the packed plane.
    backend, backend_options = resolve_parallel_backend(
        args.backend, args.workers
    )
    num_workers = 1 if backend_options else 2
    config = ServiceConfig(
        backend=backend,
        max_batch_size=16,
        max_wait_ms=5.0,
        num_workers=num_workers,
        cache_capacity=256,
    )
    test_images = dataset.test_images[:, None]
    n = args.requests
    print(
        f"serving {n} requests + {n // 4} repeats through "
        f"{config.num_workers} worker thread(s) ({backend}"
        + (f", {args.workers} processes" if backend_options else "")
        + f", N={args.stream_length})..."
    )
    with ScInferenceService(mapper, config, **backend_options) as service:
        futures = [service.submit(test_images[i]) for i in range(n)]
        responses = [future.result(timeout=300) for future in futures]
        # A second wave repeating earlier images exercises the cache
        # (submitted after the first wave resolved, so the results are in).
        repeats = [service.submit(test_images[i]) for i in range(n // 4)]
        responses += [future.result(timeout=300) for future in repeats]
        snapshot = service.metrics.snapshot()

    rows = []
    for i, response in enumerate(responses[: min(8, len(responses))]):
        rows.append(
            [
                f"request {i}",
                int(response.predictions[0]),
                int(dataset.test_labels[i]),
                f"{int(response.exit_checkpoints[0])}/{args.stream_length}",
                "hit" if bool(response.cached[0]) else "miss",
                f"{response.latency_seconds * 1e3:.1f} ms",
            ]
        )
    print()
    print(
        format_table(
            ["Request", "Predicted", "Label", "Exit cycles", "Cache", "Latency"],
            rows,
            title="First responses",
        )
    )
    correct = sum(
        int(response.predictions[0]) == int(dataset.test_labels[i % n])
        for i, response in enumerate(responses)
    )
    print(f"\naccuracy over served requests: {correct / len(responses):.3f}")
    print(f"mean micro-batch size:         {snapshot['mean_batch_size']:.1f}")
    if snapshot["mean_exit_checkpoint"] is not None:
        print(
            f"mean exit checkpoint:          "
            f"{snapshot['mean_exit_checkpoint']:.0f} / {args.stream_length} "
            f"({snapshot['cycle_reduction']:.2f}x stream-cycle reduction)"
        )
    print(f"cache hit rate:                {snapshot['cache_hit_rate']:.3f}")
    print(
        f"latency p50 / p95 / p99:       "
        f"{snapshot['latency_ms']['p50']:.1f} / "
        f"{snapshot['latency_ms']['p95']:.1f} / "
        f"{snapshot['latency_ms']['p99']:.1f} ms"
    )


if __name__ == "__main__":
    main()
