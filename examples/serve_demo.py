"""Serving walkthrough: artifacts, micro-batching, early exit, deadlines.

Loads a small CNN from a saved model artifact (training it once and
saving it on the first run -- delete the artifact directory to retrain),
stands up the micro-batching inference service through the Session facade
(:mod:`repro.api`), and pushes a burst of single-image requests through
it:

* requests submitted together are coalesced into merged batches by the
  scheduler (watch the mean batch size),
* confidently classified images early-exit at a fraction of the stream
  length (watch the exit checkpoints and the cycle reduction),
* repeated images are answered from the LRU cache without spending a
  single stream cycle (watch the hit rate),
* a final request carries a per-request deadline
  (:class:`repro.api.PredictOptions`) tight enough to force the earliest
  checkpoint -- the deadline-aware exit path.

Run with:  python examples/serve_demo.py [--backend NAME] [--model PATH]
"""

import argparse
from pathlib import Path

from repro.api import PredictOptions, ScModel, Session
from repro.cli import (
    QUICK_DATASET,
    add_backend_arguments,
    backend_epilog,
    backend_selection,
    tiny_serving_specs,
)
from repro.config import ServiceConfig
from repro.datasets import generate_digit_dataset
from repro.eval.tables import format_table
from repro.nn import Trainer, TrainingConfig
from repro.nn.architectures import build_network

DEFAULT_MODEL = Path(__file__).resolve().parent.parent / "artifacts" / "serve_demo_model"

#: Shared with the CLI's --quick training runs (see repro.cli).
DATASET = QUICK_DATASET


def train_and_save(path: Path, stream_length: int) -> None:
    """One-time training run producing the demo's model artifact."""
    print("no artifact found -- training the demo CNN once...")
    dataset = generate_digit_dataset(**DATASET)
    network = build_network(
        tiny_serving_specs(), activation="hardware", seed=5, training_stream_length=256
    )
    Trainer(network, TrainingConfig(epochs=4, seed=1)).fit(
        dataset.train_images[:, None] * 2 - 1,
        dataset.train_labels,
        dataset.test_images[:, None] * 2 - 1,
        dataset.test_labels,
        verbose=False,
    )
    ScModel(
        network,
        stream_length=stream_length,
        seed=7,
        metadata={"arch": "tiny", "dataset": DATASET},
    ).save(path)
    print(f"saved model artifact to {path}")


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog=backend_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_backend_arguments(
        parser,
        default="sc-fast",
        capability="progressive",
        include_stream_length=True,
        backend_help="progressive execution backend the worker replicas run",
    )
    parser.add_argument(
        "--model",
        type=Path,
        default=DEFAULT_MODEL,
        help="model artifact directory (trained and saved on first run)",
    )
    parser.add_argument(
        "--requests", type=int, default=32, help="single-image requests to submit"
    )
    args = parser.parse_args()

    if not args.model.exists():
        train_and_save(args.model, args.stream_length)

    # With --workers > 1: one service worker thread whose replica shards
    # each merged batch across a process pool (identical scores, more
    # cores); the artifact path rides along so worker processes rehydrate
    # replicas from the shared file instead of unpickling mappers.
    backend, backend_options = backend_selection(args)
    num_workers = 1 if backend_options else 2
    config = ServiceConfig(
        backend=backend,
        max_batch_size=16,
        max_wait_ms=5.0,
        num_workers=num_workers,
        cache_capacity=256,
    )
    session = Session.from_artifact(args.model, backend=backend, **backend_options)
    if session.stream_length != args.stream_length:
        print(
            f"note: serving at the artifact's stream length "
            f"N={session.stream_length} (--stream-length {args.stream_length} "
            f"only applies when training a new artifact; delete "
            f"{args.model} to retrain)"
        )
    dataset = generate_digit_dataset(
        **{**DATASET, **(session.model.metadata.get("dataset") or {})}
    )
    test_images = dataset.test_images[:, None]
    n = args.requests
    stream_length = session.stream_length
    print(
        f"serving {n} requests + {n // 4} repeats through "
        f"{config.num_workers} worker thread(s) ({backend}"
        + (f", {args.workers} processes" if backend_options else "")
        + f", N={stream_length}) from {args.model.name}..."
    )
    with session, session.serve(config) as service:
        futures = [service.submit(test_images[i]) for i in range(n)]
        responses = [future.result(timeout=300) for future in futures]
        # A second wave repeating earlier images exercises the cache
        # (submitted after the first wave resolved, so the results are in).
        repeats = [service.submit(test_images[i]) for i in range(n // 4)]
        responses += [future.result(timeout=300) for future in repeats]
        # One deadline-budgeted request: an (effectively) expired budget
        # forces the earliest checkpoint instead of the full stream.
        hurried_index = min(n, test_images.shape[0] - 1)
        hurried = service.infer(
            test_images[hurried_index],
            PredictOptions(deadline_ms=1e-3),
            timeout=300,
        )
        snapshot = service.metrics.snapshot()

    rows = []
    for i, response in enumerate(responses[: min(8, len(responses))]):
        rows.append(
            [
                f"request {i}",
                int(response.predictions[0]),
                int(dataset.test_labels[i]),
                f"{int(response.exit_checkpoints[0])}/{stream_length}",
                "hit" if bool(response.cached[0]) else "miss",
                f"{response.latency_seconds * 1e3:.1f} ms",
            ]
        )
    print()
    print(
        format_table(
            ["Request", "Predicted", "Label", "Exit cycles", "Cache", "Latency"],
            rows,
            title="First responses",
        )
    )
    correct = sum(
        int(response.predictions[0]) == int(dataset.test_labels[i % n])
        for i, response in enumerate(responses)
    )
    print(f"\naccuracy over served requests: {correct / len(responses):.3f}")
    print(f"mean micro-batch size:         {snapshot['mean_batch_size']:.1f}")
    if snapshot["mean_exit_checkpoint"] is not None:
        print(
            f"mean exit checkpoint:          "
            f"{snapshot['mean_exit_checkpoint']:.0f} / {stream_length} "
            f"({snapshot['cycle_reduction']:.2f}x stream-cycle reduction)"
        )
    print(f"cache hit rate:                {snapshot['cache_hit_rate']:.3f}")
    print(
        f"latency p50 / p95 / p99:       "
        f"{snapshot['latency_ms']['p50']:.1f} / "
        f"{snapshot['latency_ms']['p95']:.1f} / "
        f"{snapshot['latency_ms']['p99']:.1f} ms"
    )
    print(
        f"deadline-budgeted request:     exited at "
        f"{int(hurried.exit_checkpoints[0])}/{stream_length} cycles "
        f"(deadline 0.001 ms)"
    )


if __name__ == "__main__":
    main()
