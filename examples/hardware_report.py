"""Reproduce the hardware-utilisation comparisons of Tables 4-7.

Prints, for every block family and input size the paper evaluates, the AQFP
and CMOS energy / delay and the resulting energy-efficiency ratio.
Optionally (``--backend NAME``) follows the block tables with a quick
network sanity check that trains a small SNN and evaluates it through the
named execution backend from the registry (:mod:`repro.backends`).

Run with:  python examples/hardware_report.py [--backend bit-exact-packed]
"""

import argparse

from repro.cli import add_backend_arguments, backend_epilog, backend_selection
from repro.eval.hardware_report import (
    table4_sng,
    table5_feature_extraction,
    table6_pooling,
    table7_categorization,
)
from repro.eval.tables import format_table

HEADERS = [
    "Size",
    "AQFP E (pJ)",
    "CMOS E (pJ)",
    "E ratio",
    "AQFP delay (ns)",
    "CMOS delay (ns)",
    "Speedup",
]


def backend_sanity_check(backend: str, **backend_options: object) -> None:
    """Train a small SNN briefly and evaluate it via the named backend."""
    from repro.api import Session
    from repro.datasets import generate_digit_dataset
    from repro.nn import Trainer, TrainingConfig, build_snn

    print()
    print(f"backend sanity check ({backend!r}):")
    # A few SC-aware epochs are needed before SC accuracy is meaningful
    # (the training pushes pre-activations into the saturating regions).
    dataset = generate_digit_dataset(800, 100, seed=2019)
    network = build_snn(seed=1, training_stream_length=512)
    trainer = Trainer(network, TrainingConfig(epochs=3, seed=1))
    trainer.fit(dataset.train_images[:, None] * 2 - 1, dataset.train_labels)
    with Session.from_network(network, stream_length=512, seed=3) as session:
        result = session.evaluate(
            dataset.test_images[:, None],
            dataset.test_labels,
            backend=backend,
            max_images=16 if backend.startswith("bit-exact") else None,
            **backend_options,
        )
    print(
        f"  {result.mode}: accuracy {result.accuracy:.2f} on "
        f"{result.n_images} images (N = {result.stream_length})"
    )


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog=backend_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_backend_arguments(
        parser,
        default=None,
        backend_help="also run a quick network accuracy check through this backend",
    )
    args = parser.parse_args()
    tables = [
        ("Table 4: stochastic number generators", table4_sng()),
        ("Table 5: feature-extraction blocks", table5_feature_extraction()),
        ("Table 6: sub-sampling blocks", table6_pooling()),
        ("Table 7: categorization blocks", table7_categorization()),
    ]
    for title, rows in tables:
        print()
        print(format_table(HEADERS, [row.as_row() for row in rows], title=title))
        best = max(row.energy_ratio for row in rows)
        print(f"best energy-efficiency gain in this table: {best:.2e}x")
    if args.backend:
        name, options = backend_selection(args)
        backend_sanity_check(name, **options)


if __name__ == "__main__":
    main()
