"""Reproduce the hardware-utilisation comparisons of Tables 4-7.

Prints, for every block family and input size the paper evaluates, the AQFP
and CMOS energy / delay and the resulting energy-efficiency ratio.

Run with:  python examples/hardware_report.py
"""

from repro.eval.hardware_report import (
    table4_sng,
    table5_feature_extraction,
    table6_pooling,
    table7_categorization,
)
from repro.eval.tables import format_table

HEADERS = [
    "Size",
    "AQFP E (pJ)",
    "CMOS E (pJ)",
    "E ratio",
    "AQFP delay (ns)",
    "CMOS delay (ns)",
    "Speedup",
]


def main() -> None:
    tables = [
        ("Table 4: stochastic number generators", table4_sng()),
        ("Table 5: feature-extraction blocks", table5_feature_extraction()),
        ("Table 6: sub-sampling blocks", table6_pooling()),
        ("Table 7: categorization blocks", table7_categorization()),
    ]
    for title, rows in tables:
        print()
        print(format_table(HEADERS, [row.as_row() for row in rows], title=title))
        best = max(row.energy_ratio for row in rows)
        print(f"best energy-efficiency gain in this table: {best:.2e}x")


if __name__ == "__main__":
    main()
